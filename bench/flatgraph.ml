(* Flat-graph bench: the committed performance trajectory of the CSR +
   Bigarray cost-matrix stack (BENCH_flatgraph.json).

   Measures all-pairs shortest paths on k=16/k=32 fat-trees (dial and
   forced-heap engines) and an Algo. 3 placement solve, takes the
   minimum over several repetitions (timer noise on a shared VM is
   one-sided: interference only ever adds time), and emits
   `ppdc.bench/1` JSON.

   `--check BASELINE` is the CI gate. Raw seconds are not comparable
   across machines, so the gate normalizes every entry by the reference
   entry (all_pairs_k16_auto) measured in the same run: an entry
   regresses when its normalized time exceeds the baseline's normalized
   time by more than the tolerance (default 10%; `--tolerance` or
   PPDC_BENCH_TOLERANCE). A uniform machine-wide slowdown cancels out;
   a change that slows one path relative to the others fails the gate.
   Pass `--absolute` on the machine that recorded the baseline to gate
   on raw seconds as well. *)

module Json = Ppdc_prelude.Json
module Parallel = Ppdc_prelude.Parallel
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Shortest_paths = Ppdc_topology.Shortest_paths
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow

let reference_entry = "all_pairs_k16_auto"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let min_time ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t, r = time f in
    ignore (Sys.opaque_identity r);
    if t < !best then best := t
  done;
  !best

type entry = { name : string; seconds : float; reps : int }

let run_entries ~quick =
  let entries = ref [] in
  let record name reps f =
    let seconds = min_time ~reps f in
    Printf.eprintf "  %-22s %8.3fs (min of %d)\n%!" name seconds reps;
    entries := { name; seconds; reps } :: !entries
  in
  let ft16 = Fat_tree.build 16 in
  record reference_entry 5 (fun () -> Cost_matrix.compute ft16.graph);
  record "all_pairs_k16_heap" 5 (fun () ->
      Cost_matrix.compute ~algo:Shortest_paths.Heap ft16.graph);
  if not quick then begin
    let ft32 = Fat_tree.build 32 in
    record "all_pairs_k32_dial" 3 (fun () -> Cost_matrix.compute ft32.graph);
    record "all_pairs_k32_heap" 3 (fun () ->
        Cost_matrix.compute ~algo:Shortest_paths.Heap ft32.graph)
  end;
  let ft8 = Fat_tree.build 8 in
  let cm8 = Cost_matrix.compute ft8.graph in
  let rng = Rng.create 42 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:64 ft8 in
  let problem = Ppdc_core.Problem.make ~cm:cm8 ~flows ~n:4 () in
  let rates = Flow.base_rates flows in
  record "placement_dp_k8_n4" 5 (fun () ->
      Ppdc_core.Placement_dp.solve problem ~rates ());
  List.rev !entries

let to_json ~quick entries =
  Json.Obj
    [
      ("schema", Json.Str "ppdc.bench/1");
      ("domains", Json.Num (float_of_int (Parallel.domain_count ())));
      ("mode", Json.Str (if quick then "quick" else "full"));
      ("reference", Json.Str reference_entry);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.Str e.name);
                   ("seconds", Json.Num e.seconds);
                   ("reps", Json.Num (float_of_int e.reps));
                 ])
             entries) );
    ]

let entries_of_json j =
  let fail msg = failwith ("bad baseline: " ^ msg) in
  (match Json.member "schema" j with
  | Some (Json.Str "ppdc.bench/1") -> ()
  | _ -> fail "schema is not ppdc.bench/1");
  match Json.member "entries" j with
  | Some (Json.List l) ->
      List.map
        (fun e ->
          match (Json.member "name" e, Json.member "seconds" e) with
          | Some (Json.Str name), Some (Json.Num seconds) ->
              { name; seconds; reps = 0 }
          | _ -> fail "entry missing name/seconds")
        l
  | _ -> fail "no entries array"

let check ~tolerance ~absolute ~baseline entries =
  let find name l = List.find_opt (fun e -> String.equal e.name name) l in
  let reference l =
    match find reference_entry l with
    | Some e when e.seconds > 0.0 -> e.seconds
    | _ -> failwith ("missing reference entry " ^ reference_entry)
  in
  let base_ref = reference baseline and cur_ref = reference entries in
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun base ->
      match find base.name entries with
      | None ->
          (* Quick mode omits the k=32 entries; absence narrows the
             gate, it is not a regression. *)
          Printf.printf "SKIP %-22s (not measured in this run)\n" base.name
      | Some cur ->
          incr compared;
          let judge label base_v cur_v =
            let limit = base_v *. (1.0 +. tolerance) in
            if cur_v > limit then incr failures;
            Printf.printf
              "%-4s %-22s %-10s base %10.4f  now %10.4f  (limit %10.4f)\n"
              (if cur_v > limit then "FAIL" else "ok")
              base.name label base_v cur_v limit
          in
          judge "normalized" (base.seconds /. base_ref) (cur.seconds /. cur_ref);
          if absolute then judge "seconds" base.seconds cur.seconds)
    baseline;
  if !compared = 0 then failwith "baseline and run share no entries";
  if !failures > 0 then begin
    Printf.printf "bench-check: %d regression(s) beyond %.0f%% tolerance\n"
      !failures (100.0 *. tolerance);
    exit 1
  end
  else
    Printf.printf "bench-check: ok (%d entries within %.0f%%)\n" !compared
      (100.0 *. tolerance)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let out = ref None
  and check_path = ref None
  and quick = ref (Sys.getenv_opt "PPDC_BENCH_MODE" = Some "quick")
  and absolute = ref false
  and tolerance =
    ref
      (match Sys.getenv_opt "PPDC_BENCH_TOLERANCE" with
      | Some s -> float_of_string s
      | None -> 0.10)
  in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := Some path;
        parse rest
    | "--check" :: path :: rest ->
        check_path := Some path;
        parse rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--absolute" :: rest ->
        absolute := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: flatgraph [--quick] [--out FILE] [--check BASELINE] \
           [--tolerance F] [--absolute]\nunknown argument: %s\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Parallel.set_domains 1;
  Printf.eprintf "flatgraph bench (%s, 1 domain):\n%!"
    (if !quick then "quick" else "full");
  let entries = run_entries ~quick:!quick in
  (match !out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string (to_json ~quick:!quick entries));
      output_char oc '\n';
      close_out oc
  | None -> ());
  match !check_path with
  | Some path ->
      check ~tolerance:!tolerance ~absolute:!absolute
        ~baseline:(entries_of_json (Json.parse (read_file path)))
        entries
  | None ->
      if !out = None then
        print_endline (Json.to_string (to_json ~quick:!quick entries))
