(* Flat-graph bench: the committed performance trajectory of the CSR +
   Bigarray cost-matrix stack (BENCH_flatgraph.json).

   Measures all-pairs shortest paths on k=16/k=32 fat-trees (dial and
   forced-heap engines) and an Algo. 3 placement solve. Timing,
   artifact format and the normalized `--check` regression gate live
   in {!Bench_common}. *)

module Bench = Bench_common
module Rng = Ppdc_prelude.Rng
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Shortest_paths = Ppdc_topology.Shortest_paths
module Workload = Ppdc_traffic.Workload
module Flow = Ppdc_traffic.Flow

let reference_entry = "all_pairs_k16_auto"

let run ~quick t =
  let ft16 = Fat_tree.build 16 in
  Bench.record t reference_entry ~reps:5 (fun () ->
      Cost_matrix.compute ft16.graph);
  Bench.record t "all_pairs_k16_heap" ~reps:5 (fun () ->
      Cost_matrix.compute ~algo:Shortest_paths.Heap ft16.graph);
  if not quick then begin
    let ft32 = Fat_tree.build 32 in
    Bench.record t "all_pairs_k32_dial" ~reps:3 (fun () ->
        Cost_matrix.compute ft32.graph);
    Bench.record t "all_pairs_k32_heap" ~reps:3 (fun () ->
        Cost_matrix.compute ~algo:Shortest_paths.Heap ft32.graph)
  end;
  let ft8 = Fat_tree.build 8 in
  let cm8 = Cost_matrix.compute ft8.graph in
  let rng = Rng.create 42 in
  let flows = Workload.generate_on_fat_tree ~rng ~l:64 ft8 in
  let problem = Ppdc_core.Problem.make ~cm:cm8 ~flows ~n:4 () in
  let rates = Flow.base_rates flows in
  Bench.record t "placement_dp_k8_n4" ~reps:5 (fun () ->
      Ppdc_core.Placement_dp.solve problem ~rates ())

let () = Bench.main ~bench:"flatgraph" ~reference:reference_entry run
