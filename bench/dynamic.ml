(* Dynamic-repair bench: the committed trajectory of incremental
   cost-matrix repair (BENCH_dynamic.json).

   A single switch-switch link fails on a k=16 (and, in full mode,
   k=32) fat-tree; we measure deriving the degraded all-pairs matrix
   two ways: a cold [Cost_matrix.compute] of the degraded graph
   (rebuild) versus [Cost_matrix.repair_to] from the healthy parent's
   matrix (repair — copy the flat matrices, re-run Dijkstra only for
   sources whose shortest-path tree used the failed link). Both
   produce bit-identical matrices; the differential tests in
   test/test_dynamic.ml hold that line, this bench holds the speed.

   Besides the usual normalized `--check` gate, the bench enforces an
   in-run floor: on k=32 repair must beat rebuild by at least 5× (a
   ratio within one run, so the gate is machine-independent and runs
   on every CI invocation in full mode). *)

module Bench = Bench_common
module Rng = Ppdc_prelude.Rng
module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Failures = Ppdc_extensions.Failures

let reference_entry = "rebuild_k16"
let speedup_floor = 5.0

(* Degrade a fat-tree by exactly one switch-switch link: a fraction
   that buys ⌊1.01⌋ = 1 link under fail_links' floor semantics. *)
let fail_one_link ~seed g =
  let switch_links =
    List.length
      (List.filter
         (fun (u, v, _) -> Graph.is_switch g u && Graph.is_switch g v)
         (Graph.edges g))
  in
  let fraction = 1.01 /. float_of_int switch_links in
  let degraded, failed = Failures.fail_links ~rng:(Rng.create seed) ~fraction g in
  if List.length failed <> 1 then
    failwith "dynamic bench: expected exactly one failed link";
  degraded

let repair_or_die parent degraded =
  match Cost_matrix.repair_to parent degraded with
  | Some r -> r
  | None -> failwith "dynamic bench: repair_to refused a pure deletion"

let scenario t ~k ~reps =
  let ft = Fat_tree.build k in
  let parent = Cost_matrix.compute ft.graph in
  let degraded = fail_one_link ~seed:7 ft.graph in
  let _, rows = repair_or_die parent degraded in
  Printf.eprintf "  k=%-2d: 1 link failed, %d of %d rows re-run\n%!" k rows
    (Cost_matrix.num_nodes parent);
  Bench.record t (Printf.sprintf "rebuild_k%d" k) ~reps (fun () ->
      Cost_matrix.compute degraded);
  Bench.record t (Printf.sprintf "repair_k%d" k) ~reps (fun () ->
      repair_or_die parent degraded)

let run ~quick t =
  scenario t ~k:16 ~reps:5;
  if not quick then scenario t ~k:32 ~reps:3

(* The acceptance floor: k=32 single-link repair ≥ 5× faster than the
   cold rebuild, measured in this very run. *)
let post ~quick entries =
  if not quick then
    match (Bench.find "rebuild_k32" entries, Bench.find "repair_k32" entries) with
    | Some rebuild, Some repair ->
        let speedup = rebuild.Bench.seconds /. repair.Bench.seconds in
        Printf.printf "repair_k32 speedup over rebuild: %.1fx (floor %.0fx)\n"
          speedup speedup_floor;
        if speedup < speedup_floor then begin
          Printf.printf
            "bench-check: single-link repair lost its %.0fx advantage\n"
            speedup_floor;
          exit 1
        end
    | _ -> failwith "dynamic bench: k=32 entries missing in full mode"

let () = Bench.main ~bench:"dynamic" ~reference:reference_entry ~post run
