(* Dynamic-repair bench: the committed trajectory of incremental
   cost-matrix repair (BENCH_dynamic.json).

   A single switch-switch link fails on a k=16 (and, in full mode,
   k=32) fat-tree; we measure deriving the degraded all-pairs matrix
   two ways: a cold [Cost_matrix.compute] of the degraded graph
   (rebuild) versus [Cost_matrix.repair_to] from the healthy parent's
   matrix (repair — copy the flat matrices, re-run Dijkstra only for
   sources whose shortest-path tree used the failed link). Both
   produce bit-identical matrices; the differential tests in
   test/test_dynamic.ml hold that line, this bench holds the speed.

   The restore direction (the failed link comes back — Link_repair in
   the event simulator) is measured on a *weighted* fat-tree: with
   unit weights a restored link is an equal-cost candidate for almost
   every source (the conservative [<=] in the Relax criterion re-runs
   them all, see test_dynamic.ml), while distinct weights make the
   endpoint-distance test discriminating and the repair local.

   Besides the usual normalized `--check` gate, the bench enforces an
   in-run floor: on k=32 repair must beat rebuild by at least 2.5× (a
   ratio within one run, so it needs no committed baseline and runs on
   every CI invocation in full mode — but it is not fully
   machine-independent: repair is dominated by the flat matrix blits
   (memory bandwidth) while rebuild is Dijkstra-bound (CPU), so the
   observed ratio ranges from ~5.5× to ~3.2× across machines; the
   floor sits under that spread). *)

module Bench = Bench_common
module Rng = Ppdc_prelude.Rng
module Graph = Ppdc_topology.Graph
module Fat_tree = Ppdc_topology.Fat_tree
module Cost_matrix = Ppdc_topology.Cost_matrix
module Failures = Ppdc_extensions.Failures

let reference_entry = "rebuild_k16"
let speedup_floor = 2.5

(* Degrade a fat-tree by exactly one switch-switch link: a fraction
   that buys ⌊1.01⌋ = 1 link under fail_links' floor semantics. *)
let fail_one_link ~seed g =
  let switch_links =
    List.length
      (List.filter
         (fun (u, v, _) -> Graph.is_switch g u && Graph.is_switch g v)
         (Graph.edges g))
  in
  let fraction = 1.01 /. float_of_int switch_links in
  let degraded, failed = Failures.fail_links ~rng:(Rng.create seed) ~fraction g in
  if List.length failed <> 1 then
    failwith "dynamic bench: expected exactly one failed link";
  degraded

let repair_or_die parent degraded =
  match Cost_matrix.repair_to parent degraded with
  | Some r -> r
  | None -> failwith "dynamic bench: repair_to refused a pure deletion"

let scenario t ~k ~reps =
  let ft = Fat_tree.build k in
  let parent = Cost_matrix.compute ft.graph in
  let degraded = fail_one_link ~seed:7 ft.graph in
  let _, rows = repair_or_die parent degraded in
  Printf.eprintf "  k=%-2d: 1 link failed, %d of %d rows re-run\n%!" k rows
    (Cost_matrix.num_nodes parent);
  Bench.record t (Printf.sprintf "rebuild_k%d" k) ~reps (fun () ->
      Cost_matrix.compute degraded);
  Bench.record t (Printf.sprintf "repair_k%d" k) ~reps (fun () ->
      repair_or_die parent degraded)

(* Distinct, deterministic link weights so the restored link is not an
   equal-cost candidate everywhere (see the header comment). *)
let link_weight u v =
  1.0 +. (float_of_int (((31 * u) + (17 * v)) mod 13) /. 16.0)

let restore_scenario t ~k ~reps =
  let ft = Fat_tree.build ~weight:link_weight k in
  let healthy = Cost_matrix.compute ft.graph in
  let degraded = fail_one_link ~seed:7 ft.graph in
  let dm, _ = repair_or_die healthy degraded in
  (match Cost_matrix.repair_to dm ft.graph with
  | Some (_, rows) ->
      Printf.eprintf "  k=%-2d: link restored, %d of %d rows re-run\n%!" k rows
        (Cost_matrix.num_nodes healthy)
  | None -> failwith "dynamic bench: repair_to refused a restore");
  Bench.record t (Printf.sprintf "restore_k%d" k) ~reps (fun () ->
      match Cost_matrix.repair_to dm ft.graph with
      | Some r -> r
      | None -> failwith "dynamic bench: repair_to refused a restore")

let run ~quick t =
  (* Everything gates normalized by rebuild_k16 (~50ms), so its min
     must be stable: give the k=16 entries enough reps that scheduler
     noise cannot move the reference by double digits. *)
  scenario t ~k:16 ~reps:15;
  restore_scenario t ~k:16 ~reps:15;
  if not quick then begin
    scenario t ~k:32 ~reps:3;
    restore_scenario t ~k:32 ~reps:3
  end

(* The acceptance floor: k=32 single-link repair ≥ 2.5× faster than the
   cold rebuild, measured in this very run. *)
let post ~quick entries =
  if not quick then
    match (Bench.find "rebuild_k32" entries, Bench.find "repair_k32" entries) with
    | Some rebuild, Some repair ->
        let speedup = rebuild.Bench.seconds /. repair.Bench.seconds in
        Printf.printf "repair_k32 speedup over rebuild: %.1fx (floor %.1fx)\n"
          speedup speedup_floor;
        if speedup < speedup_floor then begin
          Printf.printf
            "bench-check: single-link repair lost its %.1fx advantage\n"
            speedup_floor;
          exit 1
        end
    | _ -> failwith "dynamic bench: k=32 entries missing in full mode"

let () = Bench.main ~bench:"dynamic" ~reference:reference_entry ~post run
