(* Event-simulator bench: the committed cost trajectory of the
   discrete-event reconfiguration day (BENCH_events.json).

   Unlike the flatgraph/dynamic benches this one records no wall
   times: every entry is a deterministic statistic of one seeded
   replay (communication cost, VNF moves, reconfiguration count), so
   the committed artifact reproduces bit-for-bit on any machine and
   the normalized `--check` gate detects behavior drift, not slowdown.

   Two in-run invariants back the eta-sweep experiment's claims and
   fail the bench if a change breaks them:

   - the mu trade-off: along the migration-coefficient sweep (under a
     fixed threshold trigger) migration traffic is non-increasing and
     communication cost non-decreasing in mu;
   - trigger dominance: at the same mu, the adaptive triggers
     (threshold, hysteresis) spend no more reconfigurations than the
     periodic baseline while landing a total cost no worse than
     [dominance_slack] of it. *)

module Bench = Bench_common
module Rng = Ppdc_prelude.Rng
module Events = Ppdc_traffic.Events
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
module Event_engine = Ppdc_sim.Event_engine

let reference_entry = "comm_mu1e2"
let seed = 17
let mu_sweep = [ (1e2, "1e2"); (1e3, "1e3"); (1e4, "1e4"); (1e5, "1e5") ]
let trigger_mu = 1e4
let dominance_slack = 1.005

let scenario ~mu =
  let problem =
    Ppdc_experiments.Runner.fat_tree_problem ~k:4 ~l:10 ~n:4 ~seed ()
  in
  Scenario.make ~mu ~initial:(Scenario.Uninformed seed) problem

(* Same composite day as the eta_sweep experiment: diurnal hours,
   quarter-hour probes, one mid-day failure episode. *)
let stream sc =
  let base = Scenario.events_of_diurnal sc in
  let probes = Events.probes ~every:0.25 ~horizon:(Events.horizon base) in
  let episode =
    Scenario.failure_episode
      ~rng:(Rng.create (seed + 0xfa11))
      ~at:5.25 ~duration:1.5 ~fraction:0.05 sc
  in
  Events.merge (Events.merge base probes) episode

let replay ~mu ~trigger =
  let sc = scenario ~mu in
  Event_engine.run sc ~policy:Engine.Mpareto ~trigger ~events:(stream sc) ()

let triggers =
  [
    ("periodic", Event_engine.Periodic 1.0);
    ("threshold", Event_engine.Threshold 1.2);
    ("hysteresis", Event_engine.Hysteresis { up = 1.2; down = 1.05 });
  ]

let run ~quick:_ t =
  List.iter
    (fun (mu, tag) ->
      let r = replay ~mu ~trigger:(Event_engine.Threshold 1.2) in
      Bench.record_value t ("comm_mu" ^ tag) r.Event_engine.total_comm;
      Bench.record_value t ("moves_mu" ^ tag)
        (float_of_int r.Event_engine.total_moves))
    mu_sweep;
  List.iter
    (fun (name, trigger) ->
      let r = replay ~mu:trigger_mu ~trigger in
      Bench.record_value t ("total_" ^ name) r.Event_engine.total_cost;
      Bench.record_value t ("reconfigs_" ^ name)
        (float_of_int r.Event_engine.reconfigurations))
    triggers

let value name entries =
  match Bench.find name entries with
  | Some e -> e.Bench.seconds
  | None -> failwith ("events bench: missing entry " ^ name)

let post ~quick:_ entries =
  let die fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "bench-check: %s\n" msg;
        exit 1)
      fmt
  in
  (* The mu trade-off, within this very run. *)
  let rec pairwise = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        let comm_a = value ("comm_mu" ^ a) entries
        and comm_b = value ("comm_mu" ^ b) entries
        and moves_a = value ("moves_mu" ^ a) entries
        and moves_b = value ("moves_mu" ^ b) entries in
        if moves_b > moves_a then
          die "migration traffic rose with mu (%s: %g -> %s: %g)" a moves_a b
            moves_b;
        if comm_b < comm_a then
          die "communication cost fell with mu (%s: %g -> %s: %g)" a comm_a b
            comm_b;
        pairwise rest
    | _ -> ()
  in
  pairwise mu_sweep;
  Printf.printf
    "mu trade-off: moves non-increasing, comm non-decreasing over %d points\n"
    (List.length mu_sweep);
  (* Trigger dominance at equal budget. *)
  let p_total = value "total_periodic" entries
  and p_reconfigs = value "reconfigs_periodic" entries in
  List.iter
    (fun name ->
      let total = value ("total_" ^ name) entries
      and reconfigs = value ("reconfigs_" ^ name) entries in
      if reconfigs > p_reconfigs then
        die "%s used more reconfigurations than periodic (%g > %g)" name
          reconfigs p_reconfigs;
      if total > p_total *. dominance_slack then
        die "%s total %.1f exceeds periodic %.1f beyond %.1f%% slack" name
          total p_total
          (100.0 *. (dominance_slack -. 1.0)))
    [ "threshold"; "hysteresis" ];
  Printf.printf
    "trigger dominance: adaptive triggers within %.1f%% of periodic at a \
     smaller reconfiguration budget\n"
    (100.0 *. (dominance_slack -. 1.0))

let () = Bench.main ~bench:"events" ~reference:reference_entry ~post run
