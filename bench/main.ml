(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Section VI) as plain-text tables — one Registry entry per artifact.
   Part 2 runs Bechamel wall-clock micro-benchmarks of the core
   algorithms.

   PPDC_BENCH_MODE=full selects paper-scale parameters (k=8/k=16,
   l up to 1000, 20 trials); the default quick mode shrinks sizes so the
   whole suite finishes in a couple of minutes. *)

module Mode = Ppdc_experiments.Mode
module Registry = Ppdc_experiments.Registry
module Runner = Ppdc_experiments.Runner
module Obs = Ppdc_prelude.Obs
module Table = Ppdc_prelude.Table
module Rng = Ppdc_prelude.Rng
module Flow = Ppdc_traffic.Flow
module Workload = Ppdc_traffic.Workload
module Scenario = Ppdc_sim.Scenario
module Engine = Ppdc_sim.Engine
open Ppdc_core

let run_experiments mode =
  Printf.printf
    "=== PPDC paper-reproduction harness (mode: %s; domains: %d; set \
     PPDC_BENCH_MODE=full for paper-scale parameters, PPDC_DOMAINS=1 for \
     the sequential path) ===\n\n"
    (Mode.name mode)
    (Ppdc_prelude.Parallel.domain_count ());
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "--- %s: %s ---\n" e.id e.summary;
      let t0 = Unix.gettimeofday () in
      let tables = Obs.time ("experiment." ^ e.id) (fun () -> e.run mode) in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter Table.print tables;
      Printf.printf "(%s completed in %.1fs)\n\n%!" e.id dt)
    Registry.all

(* --- Bechamel micro-benchmarks ---------------------------------------- *)

open Bechamel
open Toolkit

let micro_tests mode =
  let k = Mode.k_placement mode in
  let problem = Runner.fat_tree_problem ~k ~l:20 ~n:5 ~seed:1 () in
  let rates = Flow.base_rates (Problem.flows problem) in
  let ft, cm = Runner.unweighted_fat_tree k in
  let src = ft.Ppdc_topology.Fat_tree.hosts.(0) in
  let dst = ft.Ppdc_topology.Fat_tree.hosts.(Array.length ft.hosts - 1) in
  let current = (Placement_dp.solve problem ~rates ()).placement in
  let rng = Rng.create 2 in
  let rates' = Workload.redraw_rates ~rng (Problem.flows problem) in
  [
    Test.make ~name:"all-pairs-dijkstra"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_topology.Cost_matrix.compute
                (Ppdc_topology.Fat_tree.build 4).graph)));
    Test.make ~name:"dp-stroll-n5"
      (Staged.stage (fun () ->
           ignore (Stroll_dp.solve ~cm ~src ~dst ~n:5 ())));
    Test.make ~name:"primal-dual-stroll-n5"
      (Staged.stage (fun () ->
           ignore (Stroll_primal_dual.solve ~cm ~src ~dst ~n:5 ())));
    Test.make ~name:"dp-placement-n5"
      (Staged.stage (fun () -> ignore (Placement_dp.solve problem ~rates ())));
    Test.make ~name:"steering-n5"
      (Staged.stage (fun () ->
           ignore (Ppdc_baselines.Steering.place problem ~rates)));
    Test.make ~name:"mpareto-migrate"
      (Staged.stage (fun () ->
           ignore (Mpareto.migrate problem ~rates:rates' ~mu:1e4 ~current ())));
    Test.make ~name:"plan-migrate"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_baselines.Plan.migrate problem ~rates:rates' ~mu_vm:1e4
                ~placement:current ())));
    Test.make ~name:"mcf-migrate"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_baselines.Mcf_migration.migrate problem ~rates:rates'
                ~mu_vm:1e4 ~placement:current ())));
    Test.make ~name:"simulated-day-mpareto"
      (Staged.stage (fun () ->
           ignore
             (Engine.run_day (Scenario.make ~mu:1e4 problem)
                ~policy:Engine.Mpareto)));
    Test.make ~name:"frontier-search-full"
      (Staged.stage (fun () ->
           ignore
             (Frontier_search.migrate problem ~rates:rates' ~mu:1e4 ~current ())));
    Test.make ~name:"capacity-placement-c2"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_extensions.Capacity.solve problem ~rates ~capacity:2)));
    Test.make ~name:"replication-place-b4"
      (Staged.stage (fun () ->
           ignore (Ppdc_extensions.Replication.place problem ~rates ~budget:4)));
    Test.make ~name:"anneal-20k-proposals"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_extensions.Placement_anneal.solve ~rng:(Rng.create 7)
                problem ~rates)));
    Test.make ~name:"link-load-analysis"
      (Staged.stage (fun () ->
           ignore (Link_load.compute problem ~rates current)));
    Test.make ~name:"leaf-spine-build-16x32"
      (Staged.stage (fun () ->
           ignore
             (Ppdc_topology.Leaf_spine.build ~spines:16 ~leaves:32
                ~hosts_per_leaf:16 ())));
  ]

let run_micro_benchmarks mode =
  Printf.printf "--- Bechamel micro-benchmarks (monotonic clock, ns/run) ---\n%!";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let table =
    Table.create ~title:"algorithm wall-clock"
      ~columns:[ "algorithm"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ x ] -> Printf.sprintf "%.0f" x
            | Some xs ->
                String.concat ","
                  (List.map (fun x -> Printf.sprintf "%.0f" x) xs)
            | None -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square est with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "n/a"
          in
          Table.add_row table [ name; ns; r2 ])
        results)
    (micro_tests mode);
  Table.print table

(* `--metrics FILE` (or PPDC_METRICS=FILE) collects counters and span
   timings across the whole run and writes them as NDJSON on exit; the
   flag is scanned by hand since the bench has no cmdliner front end. *)
let metrics_path () =
  let argv = Sys.argv in
  let from_flag = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--metrics" && i + 1 < Array.length argv then
        from_flag := Some argv.(i + 1)
      else if String.length arg > 10 && String.sub arg 0 10 = "--metrics=" then
        from_flag := Some (String.sub arg 10 (String.length arg - 10)))
    argv;
  match !from_flag with Some _ as p -> p | None -> Obs.env_path ()

let () =
  let mode = Mode.of_env () in
  let metrics = metrics_path () in
  if metrics <> None then Obs.set_enabled true;
  run_experiments mode;
  run_micro_benchmarks mode;
  (match metrics with
  | Some path ->
      Obs.export ~path;
      Printf.printf "metrics written to %s\n" path
  | None -> ());
  print_endline "bench: all experiments completed."
