(* Shared harness for the committed `ppdc.bench/1` benchmarks
   (flatgraph, dynamic).

   Each benchmark records named entries as the minimum wall time over
   several repetitions — timer noise on a shared VM is one-sided:
   interference only ever adds time — on the monotonic clock
   ({!Ppdc_prelude.Clock}; an NTP step mid-run must not fabricate a
   regression). The JSON artifact, the `--check` regression gate and
   the CLI surface (`--out`/`--check`/`--tolerance`/`--quick`/
   `--absolute`, PPDC_BENCH_MODE / PPDC_BENCH_TOLERANCE) are shared so
   every bench gates the same way in CI.

   Raw seconds are not comparable across machines, so `--check`
   normalizes every entry by the benchmark's reference entry measured
   in the same run: an entry regresses when its normalized time
   exceeds the baseline's normalized time by more than the tolerance
   (default 10%). A uniform machine-wide slowdown cancels out; a
   change that slows one path relative to the others fails the gate.
   Pass `--absolute` on the machine that recorded the baseline to gate
   on raw seconds as well. *)

module Json = Ppdc_prelude.Json
module Clock = Ppdc_prelude.Clock
module Parallel = Ppdc_prelude.Parallel

type entry = { name : string; seconds : float; reps : int }

let time f =
  let t0 = Clock.now () in
  let r = f () in
  (Clock.elapsed_s ~since:t0, r)

let min_time ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t, r = time f in
    ignore (Sys.opaque_identity r);
    if t < !best then best := t
  done;
  !best

type recorder = { mutable entries : entry list (* newest first *) }

let record t name ~reps f =
  let seconds = min_time ~reps f in
  Printf.eprintf "  %-22s %8.3fs (min of %d)\n%!" name seconds reps;
  t.entries <- { name; seconds; reps } :: t.entries

(* Record a deterministic statistic (a cost, a move count) instead of
   a wall time. The artifact reuses the [seconds] slot, so the
   normalized `--check` gate compares exact in-run ratios — for a
   deterministic bench the committed trajectory reproduces bit-for-bit
   on any machine, and any drift is a real behavior change, not
   noise. *)
let record_value t name value =
  Printf.eprintf "  %-22s %14.4f\n%!" name value;
  t.entries <- { name; seconds = value; reps = 1 } :: t.entries

let to_json ~quick ~reference entries =
  Json.Obj
    [
      ("schema", Json.Str "ppdc.bench/1");
      ("domains", Json.Num (float_of_int (Parallel.domain_count ())));
      ("mode", Json.Str (if quick then "quick" else "full"));
      ("reference", Json.Str reference);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.Str e.name);
                   ("seconds", Json.Num e.seconds);
                   ("reps", Json.Num (float_of_int e.reps));
                 ])
             entries) );
    ]

let entries_of_json j =
  let fail msg = failwith ("bad baseline: " ^ msg) in
  (match Json.member "schema" j with
  | Some (Json.Str "ppdc.bench/1") -> ()
  | _ -> fail "schema is not ppdc.bench/1");
  match Json.member "entries" j with
  | Some (Json.List l) ->
      List.map
        (fun e ->
          match (Json.member "name" e, Json.member "seconds" e) with
          | Some (Json.Str name), Some (Json.Num seconds) ->
              { name; seconds; reps = 0 }
          | _ -> fail "entry missing name/seconds")
        l
  | _ -> fail "no entries array"

let find name l = List.find_opt (fun e -> String.equal e.name name) l

let check ~reference ~tolerance ~absolute ~baseline entries =
  let reference_of l =
    match find reference l with
    | Some e when e.seconds > 0.0 -> e.seconds
    | _ -> failwith ("missing reference entry " ^ reference)
  in
  let base_ref = reference_of baseline and cur_ref = reference_of entries in
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun base ->
      match find base.name entries with
      | None ->
          (* Quick mode omits the large entries; absence narrows the
             gate, it is not a regression. *)
          Printf.printf "SKIP %-22s (not measured in this run)\n" base.name
      | Some cur ->
          incr compared;
          let judge label base_v cur_v =
            let limit = base_v *. (1.0 +. tolerance) in
            if cur_v > limit then incr failures;
            Printf.printf
              "%-4s %-22s %-10s base %10.4f  now %10.4f  (limit %10.4f)\n"
              (if cur_v > limit then "FAIL" else "ok")
              base.name label base_v cur_v limit
          in
          judge "normalized" (base.seconds /. base_ref) (cur.seconds /. cur_ref);
          if absolute then judge "seconds" base.seconds cur.seconds)
    baseline;
  if !compared = 0 then failwith "baseline and run share no entries";
  if !failures > 0 then begin
    Printf.printf "bench-check: %d regression(s) beyond %.0f%% tolerance\n"
      !failures (100.0 *. tolerance);
    exit 1
  end
  else
    Printf.printf "bench-check: ok (%d entries within %.0f%%)\n" !compared
      (100.0 *. tolerance)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* CLI driver: measure, optionally write the artifact, optionally gate
   against a baseline, then let the bench enforce its own in-run
   invariants ([post] — e.g. the dynamic bench's repair-vs-rebuild
   speedup floor, which is a ratio within one run and therefore
   machine-independent). *)
let main ~bench ~reference ?(baseline_filter = fun e -> e)
    ?(post = fun ~quick:_ _ -> ()) run =
  let out = ref None
  and check_path = ref None
  and quick = ref (Sys.getenv_opt "PPDC_BENCH_MODE" = Some "quick")
  and absolute = ref false
  and tolerance =
    ref
      (match Sys.getenv_opt "PPDC_BENCH_TOLERANCE" with
      | Some s -> float_of_string s
      | None -> 0.10)
  in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := Some path;
        parse rest
    | "--check" :: path :: rest ->
        check_path := Some path;
        parse rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--absolute" :: rest ->
        absolute := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: %s [--quick] [--out FILE] [--check BASELINE] [--tolerance \
           F] [--absolute]\nunknown argument: %s\n"
          bench arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Parallel.set_domains 1;
  Printf.eprintf "%s bench (%s, 1 domain):\n%!" bench
    (if !quick then "quick" else "full");
  let recorder = { entries = [] } in
  run ~quick:!quick recorder;
  let entries = List.rev recorder.entries in
  (* [baseline_filter] selects which entries land in the committed
     artifact: a bench whose run includes machine-class-dependent
     measurements (e.g. a cross-domain contention ratio, which flips
     with the host's core count) keeps them out of the baseline so the
     normalized gate only ever compares class-stable entries — the
     `check` loop walks the baseline, so run-only entries are never
     judged. *)
  (match !out with
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Json.to_string
           (to_json ~quick:!quick ~reference (baseline_filter entries)));
      output_char oc '\n';
      close_out oc
  | None -> ());
  (match !check_path with
  | Some path ->
      check ~reference ~tolerance:!tolerance ~absolute:!absolute
        ~baseline:(entries_of_json (Json.parse (read_file path)))
        entries
  | None ->
      if !out = None then
        print_endline (Json.to_string (to_json ~quick:!quick ~reference entries)));
  post ~quick:!quick entries
