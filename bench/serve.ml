(* Serving-path benchmark: the sharded session registry under
   cross-domain contention, and the daemon end-to-end under the
   `ppdc loadgen` open-loop workload (DESIGN.md §4j).

   Two parts:

   1. Registry microbench — 8 tenants × 16 sessions touched from two
      raw domains (not {!Parallel}: bench_common pins the Parallel
      pool to one domain for reproducible solver entries, and this
      section is precisely about multi-domain lock contention). The
      sharded case (8 shards) partitions the key space so each domain
      touches only its own half of the shards — the layout the sharded
      design buys: disjoint sessions never meet on a mutex. The
      single-lock case (1 shard) is the PR-4/5 design: every touch
      crosses one global mutex. The [post] hook asserts the in-run
      throughput ratio (single-lock time / sharded time) ≥ 2.0 — a
      property of the lock structure, not of absolute machine speed —
      whenever the host can actually run two domains in parallel. On a
      single-core host a parallel speedup is physically impossible
      (sharding even loses a few percent to hashing), so there the
      ratio is reported but not gated; the applied floor is recorded
      in the artifact as [registry_speedup_floor] (0 = not gated).

   2. Daemon loadgen — boots the real Unix-socket daemon in-process,
      drives it with `ppdc loadgen`'s engine (8 tenants × 2 sessions,
      open-loop Poisson below saturation) and records throughput and
      p50/p95/p99. [post] asserts zero protocol errors and full
      completion — machine-independent on any host.

   Wall times and queueing latencies here depend on the host's core
   count — unlike the other benches, whose Parallel pool is pinned to
   one domain — so the committed baseline keeps only the
   machine-class-independent count entries ([baseline_filter]); the
   normalized `--check` gate proves the protocol stayed clean while
   the hard structural guarantees live in [post] and run everywhere,
   including under `--check` in CI. *)

module Registry = Ppdc_server.Registry
module Engine = Ppdc_server.Engine
module Transport = Ppdc_server.Transport
module Loadgen = Ppdc_server.Loadgen

let tenants = 8
let per_tenant = 16
let halves = tenants / 2

(* Session names per tenant, chosen (by probing the stable hash) so
   that in the 8-shard registry tenant i's sessions all live in shard
   half i*2/tenants — domain 0 owns shards 0–3, domain 1 owns 4–7. *)
let make_names () =
  let reg8 : int Registry.t = Registry.create ~shards:8 () in
  Array.init tenants (fun i ->
      let want_half = i / halves in
      let rec pick j m acc =
        if j = per_tenant then Array.of_list (List.rev acc)
        else
          let name = Printf.sprintf "t%d-s%d" i m in
          if Registry.shard_id reg8 name / 4 = want_half then
            pick (j + 1) (m + 1) (name :: acc)
          else pick j (m + 1) acc
      in
      pick 0 0 [])

(* Both domains run the identical op sequence against a [shards]-wide
   registry; only the lock structure differs between the two cases, so
   the time ratio is the throughput ratio. *)
let touch_run ~shards ~reps names () =
  let reg : int Registry.t = Registry.create ~shards () in
  Array.iter
    (Array.iter (fun n -> ignore (Registry.put reg ~name:n ~bytes:1 0)))
    names;
  let worker d () =
    for _ = 1 to reps do
      for i = d * halves to ((d + 1) * halves) - 1 do
        Array.iter (fun n -> ignore (Registry.find reg n)) names.(i)
      done
    done
  in
  let other = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join other

let speedup_floor =
  if Domain.recommended_domain_count () >= 2 then 2.0 else 0.0

let with_daemon ~workers f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ppdc-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let engine = Engine.create ~shards:8 () in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Transport.serve_unix ~workers
          ~on_ready:(fun () -> Atomic.set ready true)
          ~path engine)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.01
  done;
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Transport.call ~path [ {|{"id":0,"method":"shutdown"}|} ])
       with _ -> ());
      Domain.join server)
    (fun () -> f path)

let run ~quick t =
  let requests = if quick then 120 else 400 in
  let outcome =
    with_daemon ~workers:8 (fun path ->
        Loadgen.run
          {
            Loadgen.default_config with
            path;
            rate = 25.;
            requests;
            tenants = 8;
            sessions = 2;
            connections = 1;
            seed = 42;
          })
  in
  Printf.eprintf "  loadgen: %d/%d ok, p99 %.2f ms\n%!" outcome.ok
    outcome.sent outcome.p99_ms;
  if outcome.completed < outcome.sent then
    failwith "serve bench: loadgen lost responses";
  Bench_common.record_value t "serve_requests" (float_of_int outcome.completed);
  Bench_common.record_value t "serve_errors"
    (float_of_int outcome.other_errors);
  Bench_common.record_value t "serve_throughput" outcome.throughput;
  Bench_common.record_value t "serve_p50_ms" outcome.p50_ms;
  Bench_common.record_value t "serve_p95_ms" outcome.p95_ms;
  Bench_common.record_value t "serve_p99_ms" outcome.p99_ms;
  let names = make_names () in
  let reps = if quick then 1000 else 5000 in
  Bench_common.record t "registry_touch_shard8" ~reps:3
    (touch_run ~shards:8 ~reps names);
  Bench_common.record t "registry_touch_shard1" ~reps:3
    (touch_run ~shards:1 ~reps names);
  Bench_common.record_value t "registry_speedup_floor" speedup_floor

(* In-run invariants, enforced on every run including `--check` in
   CI: the parallel-speedup floor wherever two domains can actually
   run in parallel, and a clean protocol run everywhere. *)
let post ~quick:_ entries =
  let value name =
    match List.find_opt (fun e -> e.Bench_common.name = name) entries with
    | Some e -> e.Bench_common.seconds
    | None -> failwith ("serve bench: missing entry " ^ name)
  in
  let t8 = value "registry_touch_shard8"
  and t1 = value "registry_touch_shard1"
  and floor = value "registry_speedup_floor" in
  let ratio = t1 /. t8 in
  Printf.printf
    "serve: sharded/single-lock throughput ratio %.2fx (floor %s), p99 %.2f \
     ms\n"
    ratio
    (if floor > 0. then Printf.sprintf "%.1fx" floor
     else "not gated: single-core host")
    (value "serve_p99_ms");
  if floor > 0. && ratio < floor then
    failwith
      (Printf.sprintf
         "serve bench: sharded registry only %.2fx over single lock \
          (floor %.1fx)"
         ratio floor);
  if value "serve_errors" > 0. then
    failwith "serve bench: loadgen saw protocol errors"

(* Only the machine-class-independent counts go into the committed
   baseline; wall times and latencies would flip with the host's core
   count (see the header comment). *)
let baseline_filter entries =
  List.filter
    (fun e ->
      List.mem e.Bench_common.name [ "serve_requests"; "serve_errors" ])
    entries

let () =
  Bench_common.main ~bench:"serve" ~reference:"serve_requests"
    ~baseline_filter ~post run
