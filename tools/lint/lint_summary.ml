(* Phase 1 of the concurrency rules (R6-R8): build per-function
   summaries of mutex acquisitions and outgoing calls from every .cmt
   in the scan, then close them under the call graph with a fixpoint.
   Phase 2 ([Lint_concurrency]) replays each file against the closed
   summaries, so a lock-order inversion hidden behind a function call —
   even a cross-module one — is visible at the call site.

   Attribute grammar (see EXTENDING.md):
     [@@@ppdc.lock_order "a b c"]      declares a > b > c (outer first);
                                       every ordered pair becomes an edge
     [@ppdc.guards "cls"]              on a record label: that mutex field
                                       belongs to lock class [cls]
     [@@ppdc.guards "cls"]             on a top-level mutex binding: same
     [@@ppdc.calls_under "cls"]        on a function: literal lambdas
                                       passed to it run with [cls] held
     [@@ppdc.domain_safe "reason"]     on a *function*: its transitive
                                       acquisitions are exempt from the
                                       R8 closure check (and are not
                                       rolled up into callers)

   Soundness limits, by design (documented in DESIGN.md §4h): mutexes
   passed as first-class values classify as unknown and are skipped;
   calls through function parameters are unresolvable; nested-module
   function bindings are keyed by compilation unit only. *)

open Typedtree

type summary = {
  key : string;  (* "Unit.fn", dune mangling undone *)
  sum_src : string;
  mutable direct : (string * Location.t) list;  (* lock class, site *)
  mutable calls : (string * Location.t) list;  (* callee key, site *)
  exempt : bool;  (* [@@ppdc.domain_safe] on the function *)
  calls_under : string list;  (* [@@ppdc.calls_under] classes *)
  mutable trans : (string * string list) list;
      (* transitive acquisitions: class -> witness call chain *)
}

type genv = {
  mutable order : (string * string) list;  (* (outer, inner) declared pairs *)
  summaries : (string, summary) Hashtbl.t;
  binding_class : (string, string) Hashtbl.t;  (* "Unit.mutex" -> class *)
}

(* --- key utilities ------------------------------------------------------ *)

let dot_suffix ~suffix key =
  String.equal key suffix || String.ends_with ~suffix:("." ^ suffix) key

(* Expand a leading local-module alias ("module M = Ppdc_prelude.Mutexes"
   keeps call paths as M.f in the typed tree). *)
let expand_alias aliases key =
  match String.index_opt key '.' with
  | None -> key
  | Some i -> (
      let head = String.sub key 0 i in
      match Hashtbl.find_opt aliases head with
      | Some full ->
          full ^ String.sub key i (String.length key - i)
      | None -> key)

(* Single-segment idents are local to the compilation unit. *)
let qualify unit_name key =
  if String.contains key '.' then key else unit_name ^ "." ^ key

let head_key aliases (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (expand_alias aliases (Lint_types.norm_path p))
  | _ -> None

let is_with_lock key = dot_suffix ~suffix:"Mutexes.with_lock" key
let is_mutex_lock key = String.equal key "Mutex.lock"
let is_mutex_unlock key = String.equal key "Mutex.unlock"
let is_spawn key = dot_suffix ~suffix:"Domain.spawn" key

let parallel_entries =
  [
    "Parallel.parallel_for";
    "Parallel.init";
    "Parallel.parallel_map";
    "Parallel.map_reduce";
    "Parallel.run";
  ]

let is_parallel_entry key =
  List.exists (fun s -> dot_suffix ~suffix:s key) parallel_entries

let is_function (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let first_pos_arg args =
  List.find_map
    (function Asttypes.Nolabel, Some (a : expression) -> Some a | _ -> None)
    args

(* --- lock-class classification ------------------------------------------ *)

let guards_tokens attrs =
  List.concat_map Lint_types.attr_tokens
    (Lint_types.attrs_named "ppdc.guards" attrs)

(* A mutex expression resolves to its declared lock class, or None if it
   is first-class (parameter, array element, ...) — unknown mutexes are
   skipped, not guessed. *)
let classify genv aliases unit_name (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> (
      match guards_tokens lbl.lbl_attributes with c :: _ -> Some c | [] -> None)
  | Texp_ident (p, _, _) -> (
      let key = qualify unit_name (expand_alias aliases (Lint_types.norm_path p)) in
      match Hashtbl.find_opt genv.binding_class key with
      | Some c -> Some c
      | None ->
          (* cross-unit reference spelled through a library wrapper *)
          let hits =
            Hashtbl.fold
              (fun k c acc ->
                if dot_suffix ~suffix:k key || dot_suffix ~suffix:key k then
                  c :: acc
                else acc)
              genv.binding_class []
          in
          (match hits with [ c ] -> Some c | _ -> None))
  | _ -> None

(* --- per-file alias map ------------------------------------------------- *)

let aliases_of (str : structure) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (it : structure_item) ->
      match it.str_desc with
      | Tstr_module
          { mb_id = Some _; mb_name = { txt = Some name; _ }; mb_expr; _ } -> (
          match mb_expr.mod_desc with
          | Tmod_ident (p, _) ->
              Hashtbl.replace tbl name (Lint_types.norm_name (Path.name p))
          | _ -> ())
      | _ -> ())
    str.str_items;
  tbl

(* --- summary collection ------------------------------------------------- *)

let binding_name (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (_, l) -> Some l.txt
  | Tpat_alias (_, _, l) -> Some l.txt
  | _ -> None

let collect_body genv aliases unit_name sum body =
  let super = Tast_iterator.default_iterator in
  let expr (it : Tast_iterator.iterator) (e : expression) =
    match e.exp_desc with
    | Texp_apply (h, args) -> (
        match head_key aliases h with
        | Some key when is_spawn key ->
            (* A spawned domain's acquisitions are not held by this
               function; analyze nothing here (the spawned body is
               checked on its own wherever it acquires). *)
            List.iter
              (fun (_, a) ->
                match a with
                | Some a when not (is_function a) -> it.expr it a
                | _ -> ())
              args
        | Some key ->
            let qkey = qualify unit_name key in
            (if is_with_lock key || is_mutex_lock key then (
               match first_pos_arg args with
               | Some m -> (
                   match classify genv aliases unit_name m with
                   | Some c -> sum.direct <- (c, e.exp_loc) :: sum.direct
                   | None -> ())
               | None -> ())
             else if not (is_mutex_unlock key) then
               sum.calls <- (qkey, e.exp_loc) :: sum.calls);
            super.expr it e
        | None -> super.expr it e)
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  it.expr it body

let collect_cmt genv cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> ()
  | info -> (
      match (info.cmt_annots, info.cmt_sourcefile) with
      | Implementation str, Some src when Filename.check_suffix src ".ml" ->
          let unit_name = Lint_types.norm_name info.cmt_modname in
          let aliases = aliases_of str in
          List.iter
            (fun (it : structure_item) ->
              match it.str_desc with
              | Tstr_attribute a
                when String.equal a.attr_name.txt "ppdc.lock_order" ->
                  let classes = Lint_types.attr_tokens a in
                  let rec pairs = function
                    | [] -> []
                    | outer :: rest ->
                        List.map (fun inner -> (outer, inner)) rest @ pairs rest
                  in
                  genv.order <- genv.order @ pairs classes
              | Tstr_value (_, vbs) ->
                  List.iter
                    (fun vb ->
                      match binding_name vb with
                      | None -> ()
                      | Some name ->
                          let key = unit_name ^ "." ^ name in
                          (match guards_tokens vb.vb_attributes with
                          | c :: _ when not (is_function vb.vb_expr) ->
                              Hashtbl.replace genv.binding_class key c
                          | _ -> ());
                          let is_fn =
                            is_function vb.vb_expr
                            ||
                            match Types.get_desc vb.vb_expr.exp_type with
                            | Tarrow _ -> true
                            | _ -> false
                          in
                          if is_fn then begin
                            let sum =
                              {
                                key;
                                sum_src = src;
                                direct = [];
                                calls = [];
                                exempt =
                                  Lint_types.has_attr "ppdc.domain_safe"
                                    vb.vb_attributes;
                                calls_under =
                                  List.concat_map Lint_types.attr_tokens
                                    (Lint_types.attrs_named "ppdc.calls_under"
                                       vb.vb_attributes);
                                trans = [];
                              }
                            in
                            collect_body genv aliases unit_name sum vb.vb_expr;
                            Hashtbl.replace genv.summaries key sum
                          end)
                    vbs
              | _ -> ())
            str.str_items
      | _ -> ())

let collect cmt_paths =
  let genv =
    {
      order = [];
      summaries = Hashtbl.create 64;
      binding_class = Hashtbl.create 16;
    }
  in
  List.iter (collect_cmt genv) cmt_paths;
  genv

(* --- call resolution and fixpoint --------------------------------------- *)

(* Exact key, else a unique dot-aligned suffix match in either direction
   (call sites spell "Ppdc_prelude.Obs.incr", summaries are keyed
   "Obs.incr"). Ambiguity resolves to nothing rather than guessing. *)
let resolve genv key =
  match Hashtbl.find_opt genv.summaries key with
  | Some s -> Some s
  | None -> (
      let hits =
        Hashtbl.fold
          (fun k s acc ->
            if dot_suffix ~suffix:k key || dot_suffix ~suffix:key k then
              s :: acc
            else acc)
          genv.summaries []
      in
      match hits with [ s ] -> Some s | _ -> None)

(* trans(F) = direct(F) ∪ ⋃ { trans(G) | F calls G, G not exempt },
   with the first witness chain kept per class. Exempt functions roll
   nothing up — [@@ppdc.domain_safe] on [Obs.with_shard] is what keeps
   every instrumented parallel closure out of R8. *)
let fixpoint genv =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ s ->
        if not s.exempt then begin
          let add (c, via) =
            if not (List.exists (fun (c', _) -> String.equal c c') s.trans)
            then begin
              s.trans <- (c, via) :: s.trans;
              changed := true
            end
          in
          List.iter (fun (c, _) -> add (c, [ s.key ])) s.direct;
          List.iter
            (fun (k, _) ->
              match resolve genv k with
              | Some g when not g.exempt ->
                  List.iter (fun (c, via) -> add (c, s.key :: via)) g.trans
              | _ -> ())
            s.calls
        end)
      genv.summaries
  done

(* Acquiring [c] while holding [h] inverts the declared order iff the
   declaration places [c] strictly before (outside) [h]. *)
let order_violation genv ~acquiring ~held =
  List.exists
    (fun (outer, inner) ->
      String.equal outer acquiring && String.equal inner held)
    genv.order

let build cmt_paths =
  let genv = collect cmt_paths in
  fixpoint genv;
  genv
