(* Phase 2 of the concurrency rules: replay one .cmt against the
   closed summaries from [Lint_summary].

   R6 lock-order      — acquiring a lock class declared *outside* one
                        currently held (directly, or transitively through
                        any chain of calls the fixpoint closed over).
   R7 unsafe-locking  — [Mutex.lock] whose matching unlock is missing on
                        the exception path (not [Fun.protect]-shaped and
                        not provably non-raising up to the unlock), plus
                        blocking [Unix.*] calls made while holding a lock.
   R8 parallel-purity — inside a literal closure passed to a
                        [Parallel.*] entry point: any lock acquisition
                        (direct or via a known callee's summary), and
                        writes to captured mutable state not indexed by a
                        closure-local (the loop variable). *)

open Typedtree
module S = Lint_summary
module T = Lint_types

type ctx = {
  src : string;
  genv : S.genv;
  unit_name : string;
  aliases : (string, string) Hashtbl.t;
  mutable active_allows : string list;
  mutable findings : T.finding list;
  mutable held : (string * Location.t) list;  (* innermost first *)
  consumed : (Location.t, unit) Hashtbl.t;
      (* lock applies already handled by an enclosing sequence *)
}

let suppressed ctx id =
  let slug = List.assoc id T.rule_slugs in
  List.exists (fun tok -> T.token_matches tok (id, slug)) ctx.active_allows

let report ctx (loc : Location.t) id msg =
  if (not (suppressed ctx id)) && not loc.loc_ghost then begin
    let p = loc.loc_start in
    ctx.findings <-
      {
        T.file = ctx.src;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule = id;
        slug = List.assoc id T.rule_slugs;
        msg;
      }
      :: ctx.findings
  end

let with_allows ctx tokens f =
  if tokens = [] then f ()
  else begin
    let saved = ctx.active_allows in
    ctx.active_allows <- tokens @ saved;
    Fun.protect ~finally:(fun () -> ctx.active_allows <- saved) f
  end

let with_held ctx cls loc f =
  match cls with
  | None -> f ()
  | Some c ->
      let saved = ctx.held in
      ctx.held <- (c, loc) :: saved;
      Fun.protect ~finally:(fun () -> ctx.held <- saved) f

let with_held_classes ctx classes loc f =
  let saved = ctx.held in
  ctx.held <- List.map (fun c -> (c, loc)) classes @ saved;
  Fun.protect ~finally:(fun () -> ctx.held <- saved) f

let with_held_none ctx f =
  let saved = ctx.held in
  ctx.held <- [];
  Fun.protect ~finally:(fun () -> ctx.held <- saved) f

(* --- shared shape helpers ----------------------------------------------- *)

let head_key ctx e = S.head_key ctx.aliases e
let classify ctx e = S.classify ctx.genv ctx.aliases ctx.unit_name e

(* Syntactic identity of a mutex expression, for matching lock to
   unlock: the ident path, or the field chain off a base ident. *)
let rec mutex_token (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (T.norm_path p)
  | Texp_field (b, _, lbl) -> (
      match mutex_token b with
      | Some t -> Some (t ^ "." ^ lbl.lbl_name)
      | None -> None)
  | _ -> None

(* [Mutex.lock m] as an application: returns the mutex argument. *)
let lock_arg ctx (e : expression) =
  match e.exp_desc with
  | Texp_apply (h, args) -> (
      match head_key ctx h with
      | Some key when S.is_mutex_lock key -> S.first_pos_arg args
      | _ -> None)
  | _ -> None

let is_unlock_of ctx token (e : expression) =
  match e.exp_desc with
  | Texp_apply (h, args) -> (
      match head_key ctx h with
      | Some key when S.is_mutex_unlock key -> (
          match S.first_pos_arg args with
          | Some m -> (
              match mutex_token m with
              | Some t -> String.equal t token
              | None -> false)
          | None -> false)
      | _ -> false)
  | _ -> false

(* [Fun.protect ~finally:(fun () -> Mutex.unlock m) f] releases on every
   path; this is exactly the [Mutexes.with_lock] body shape. *)
let is_protect_releasing ctx token (e : expression) =
  match e.exp_desc with
  | Texp_apply (h, args) -> (
      match head_key ctx h with
      | Some key when S.dot_suffix ~suffix:"Fun.protect" key ->
          List.exists
            (fun (lbl, a) ->
              match (lbl, a) with
              | Asttypes.Labelled "finally", Some (fin : expression) -> (
                  match fin.exp_desc with
                  | Texp_function { cases = [ c ]; _ } ->
                      is_unlock_of ctx token c.c_rhs
                  | _ -> false)
              | _ -> false)
            args
      | _ -> false)
  | _ -> false

(* --- R7: the conservative non-raising whitelist -------------------------- *)

let safe_calls =
  [
    ":=";
    "!";
    "incr";
    "decr";
    "not";
    "&&";
    "||";
    "+";
    "-";
    "*";
    "~-";
    "+.";
    "-.";
    "*.";
    "=";
    "<>";
    "<";
    ">";
    "<=";
    ">=";
    "ignore";
    "Atomic.get";
    "Atomic.set";
    "Atomic.incr";
    "Atomic.decr";
    "Atomic.exchange";
    "Atomic.fetch_and_add";
    "Atomic.compare_and_set";
    "Condition.signal";
    "Condition.broadcast";
    "Condition.wait";
    "Mutex.unlock";
    "Queue.is_empty";
    "Queue.length";
    "Queue.push";
    "Queue.add";
    "Hashtbl.length";
    "Hashtbl.replace";
    "Hashtbl.find_opt";
    "String.length";
    "Array.length";
  ]

let rec non_raising ctx (e : expression) =
  match e.exp_desc with
  | Texp_constant _ | Texp_ident _ | Texp_function _ -> true
  | Texp_construct (_, _, es) | Texp_tuple es ->
      List.for_all (non_raising ctx) es
  | Texp_field (b, _, _) -> non_raising ctx b
  | Texp_setfield (b, _, _, v) -> non_raising ctx b && non_raising ctx v
  | Texp_sequence (a, b) -> non_raising ctx a && non_raising ctx b
  | Texp_let (_, vbs, b) ->
      List.for_all (fun vb -> non_raising ctx vb.vb_expr) vbs
      && non_raising ctx b
  | Texp_ifthenelse (c, t, f) ->
      non_raising ctx c && non_raising ctx t
      && (match f with None -> true | Some f -> non_raising ctx f)
  | Texp_apply (h, args) -> (
      match head_key ctx h with
      | Some key ->
          T.mem_s key safe_calls
          && List.for_all
               (fun (_, a) ->
                 match a with Some a -> non_raising ctx a | None -> true)
               args
      | None -> false)
  | _ -> false

(* Scan the continuation of [Mutex.lock m] for the matching unlock,
   requiring everything before it to be provably non-raising. [Ok ()]
   means the lock provably releases on every path. *)
let rec r7_scan ctx token (e : expression) =
  if is_unlock_of ctx token e then Ok ()
  else if is_protect_releasing ctx token e then Ok ()
  else
    match e.exp_desc with
    | Texp_sequence (a, b) ->
        if is_unlock_of ctx token a then Ok ()
        else if non_raising ctx a then r7_scan ctx token b
        else Error a.exp_loc
    | Texp_let (_, vbs, b) ->
        if List.for_all (fun vb -> non_raising ctx vb.vb_expr) vbs then
          r7_scan ctx token b
        else Error e.exp_loc
    | _ -> Error e.exp_loc

(* --- R6 checks ----------------------------------------------------------- *)

let check_acquire ctx cls loc =
  List.iter
    (fun (h, _) ->
      if S.order_violation ctx.genv ~acquiring:cls ~held:h then
        report ctx loc "R6"
          (Printf.sprintf
             "acquires lock class '%s' while holding '%s'; the declared \
              [@@@ppdc.lock_order] puts '%s' strictly outside '%s' — \
              release '%s' first or restructure the critical sections"
             cls h cls h h))
    ctx.held

(* A call to a function whose (transitive) summary acquires a class the
   current held set orders after it. The witness chain names the path
   the fixpoint found, so cross-module inversions are actionable. *)
let check_call ctx key loc =
  match S.resolve ctx.genv key with
  | None -> ()
  | Some g ->
      if not g.S.exempt then
        List.iter
          (fun (c, via) ->
            List.iter
              (fun (h, _) ->
                if S.order_violation ctx.genv ~acquiring:c ~held:h then
                  report ctx loc "R6"
                    (Printf.sprintf
                       "call acquires lock class '%s' (via %s) while \
                        holding '%s'; the declared order puts '%s' \
                        strictly outside '%s'"
                       c
                       (String.concat " -> " via)
                       h c h))
              ctx.held)
          g.S.trans

(* --- R8: purity of Parallel closures ------------------------------------ *)

let rec pat_vars : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (q, id, _) -> Ident.name id :: pat_vars q
  | Tpat_tuple ps -> List.concat_map pat_vars ps
  | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_variant (_, Some q, _) -> pat_vars q
  | Tpat_record (fs, _) -> List.concat_map (fun (_, _, q) -> pat_vars q) fs
  | Tpat_lazy q -> pat_vars q
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_value v -> pat_vars (v :> value general_pattern)
  | Tpat_exception q -> pat_vars q
  | _ -> []

let rec base_ident (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (Ident.name (Path.head p))
  | Texp_field (b, _, _) -> base_ident b
  | _ -> None

(* Receiver-first mutators on the standard containers. *)
let set_like =
  [
    "Array.set";
    "Array.unsafe_set";
    "Bytes.set";
    "Bytes.unsafe_set";
    "Bigarray.Array1.set";
    "Bigarray.Array1.unsafe_set";
    "Bigarray.Array2.set";
    "Bigarray.Array2.unsafe_set";
    "Bigarray.Genarray.set";
  ]

let container_mutators =
  [
    "Hashtbl.add";
    "Hashtbl.replace";
    "Hashtbl.remove";
    "Hashtbl.reset";
    "Hashtbl.clear";
    "Queue.push";
    "Queue.add";
    "Queue.pop";
    "Queue.take";
    "Queue.clear";
    "Queue.transfer";
    "Stack.push";
    "Stack.pop";
    "Stack.clear";
    "Buffer.add_string";
    "Buffer.add_char";
    "Buffer.add_bytes";
    "Buffer.clear";
    "Buffer.reset";
  ]

let ref_writers = [ ":="; "incr"; "decr" ]

let r8_check ctx entry_key (closure : expression) =
  let locals = ref [] in
  let mentions_local (e : expression) =
    let found = ref false in
    let super = Tast_iterator.default_iterator in
    let expr it (e : expression) =
      (match e.exp_desc with
      | Texp_ident (p, _, _) ->
          if T.mem_s (Ident.name (Path.head p)) !locals then found := true
      | _ -> ());
      super.expr it e
    in
    let it = { super with expr } in
    it.expr it e;
    !found
  in
  let captured (e : expression) =
    match base_ident e with
    | Some n -> if T.mem_s n !locals then None else Some n
    | None -> None  (* complex receiver: assume locally constructed *)
  in
  let rep loc msg =
    report ctx loc "R8"
      (Printf.sprintf "%s inside a closure passed to %s %s" msg entry_key
         "— Parallel closures must only write state indexed by their own \
          loop variable and must not take locks")
  in
  let super = Tast_iterator.default_iterator in
  let with_scope names f =
    let saved = !locals in
    locals := names @ saved;
    Fun.protect ~finally:(fun () -> locals := saved) f
  in
  let rec expr it (e : expression) =
    with_allows ctx (T.allow_tokens e.exp_attributes) @@ fun () ->
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            with_scope (pat_vars c.c_lhs) (fun () ->
                Option.iter (expr it) c.c_guard;
                expr it c.c_rhs))
          cases
    | Texp_let (_, vbs, b) ->
        List.iter (fun vb -> expr it vb.vb_expr) vbs;
        with_scope (List.concat_map (fun vb -> pat_vars vb.vb_pat) vbs)
          (fun () -> expr it b)
    | Texp_match (scr, cases, _) ->
        expr it scr;
        List.iter
          (fun c ->
            with_scope (pat_vars c.c_lhs) (fun () ->
                Option.iter (expr it) c.c_guard;
                expr it c.c_rhs))
          cases
    | Texp_for (id, _, lo, hi, _, body) ->
        expr it lo;
        expr it hi;
        with_scope [ Ident.name id ] (fun () -> expr it body)
    | Texp_setfield (b, _, _, v) ->
        (match captured b with
        | Some n ->
            rep e.exp_loc
              (Printf.sprintf "write to field of captured '%s'" n)
        | None -> ());
        expr it b;
        expr it v
    | Texp_apply (h, args) ->
        (match head_key ctx h with
        | Some key ->
            let qkey = S.qualify ctx.unit_name key in
            if S.is_with_lock key || S.is_mutex_lock key then
              rep e.exp_loc "lock acquisition"
            else if T.mem_s key ref_writers then (
              match S.first_pos_arg args with
              | Some r -> (
                  match captured r with
                  | Some n ->
                      rep e.exp_loc
                        (Printf.sprintf "write to captured ref '%s'" n)
                  | None -> ())
              | None -> ())
            else if T.mem_s key set_like then (
              match args with
              | (_, Some recv) :: rest -> (
                  match captured recv with
                  | Some n ->
                      (* index args (all but the stored value) naming a
                         closure-local mean "my slot": the blessed
                         pattern. *)
                      let index_args =
                        match List.rev rest with
                        | _value :: idx_rev -> List.rev idx_rev
                        | [] -> []
                      in
                      if
                        not
                          (List.exists
                             (fun (_, a) ->
                               match a with
                               | Some a -> mentions_local a
                               | None -> false)
                             index_args)
                      then
                        rep e.exp_loc
                          (Printf.sprintf
                             "write to captured '%s' at an index \
                              independent of the loop variable"
                             n)
                  | None -> ())
              | _ -> ())
            else if T.mem_s key container_mutators then (
              match S.first_pos_arg args with
              | Some recv -> (
                  match captured recv with
                  | Some n ->
                      rep e.exp_loc
                        (Printf.sprintf
                           "mutation of captured container '%s'" n)
                  | None -> ())
              | None -> ())
            else
              (* a known callee whose closed summary takes locks *)
              (match S.resolve ctx.genv qkey with
              | Some g when (not g.S.exempt) && g.S.trans <> [] ->
                  let c, via = List.hd g.S.trans in
                  rep e.exp_loc
                    (Printf.sprintf
                       "call transitively acquires lock class '%s' (via %s)"
                       c
                       (String.concat " -> " via))
              | _ -> ())
        | None -> ());
        super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  expr it closure

(* --- the main walk ------------------------------------------------------- *)

let iterator ctx =
  let super = Tast_iterator.default_iterator in
  let rec expr it (e : expression) =
    with_allows ctx (T.allow_tokens e.exp_attributes) @@ fun () ->
    match e.exp_desc with
    | Texp_sequence (a, b) when lock_arg ctx a <> None ->
        let m = Option.get (lock_arg ctx a) in
        Hashtbl.replace ctx.consumed a.exp_loc ();
        let cls = classify ctx m in
        with_allows ctx (T.allow_tokens a.exp_attributes) (fun () ->
            (match cls with
            | Some c -> check_acquire ctx c a.exp_loc
            | None -> ());
            match mutex_token m with
            | None ->
                report ctx a.exp_loc "R7"
                  "Mutex.lock on a computed mutex expression cannot be \
                   matched to its unlock; use Mutexes.with_lock"
            | Some tok -> (
                match r7_scan ctx tok b with
                | Ok () -> ()
                | Error _ ->
                    report ctx a.exp_loc "R7"
                      "Mutex.lock without a provably-reached unlock on the \
                       exception path; wrap the critical section in \
                       Mutexes.with_lock (or Fun.protect ~finally)"));
        expr it a;
        with_held ctx cls a.exp_loc (fun () -> expr it b)
    | Texp_apply (h, args) -> (
        match head_key ctx h with
        | None -> super.expr it e
        | Some key ->
            let qkey = S.qualify ctx.unit_name key in
            if S.is_with_lock key then begin
              let m = S.first_pos_arg args in
              let cls = Option.bind m (classify ctx) in
              (match cls with
              | Some c -> check_acquire ctx c e.exp_loc
              | None -> ());
              Option.iter (expr it) m;
              with_held ctx cls e.exp_loc (fun () ->
                  List.iter
                    (fun (_, a) ->
                      match a with
                      | Some (arg : expression) when not (Option.equal ( == ) (Some arg) m)
                        ->
                          (match arg.exp_desc with
                          | Texp_ident (p, _, _) ->
                              check_call ctx
                                (S.qualify ctx.unit_name
                                   (S.expand_alias ctx.aliases (T.norm_path p)))
                                arg.exp_loc
                          | _ -> ());
                          expr it arg
                      | _ -> ())
                    args)
            end
            else if S.is_mutex_lock key then begin
              if not (Hashtbl.mem ctx.consumed e.exp_loc) then begin
                (match S.first_pos_arg args with
                | Some m -> (
                    match classify ctx m with
                    | Some c -> check_acquire ctx c e.exp_loc
                    | None -> ())
                | None -> ());
                report ctx e.exp_loc "R7"
                  "Mutex.lock outside a recognized lock/unlock span; use \
                   Mutexes.with_lock so the exception path releases"
              end;
              List.iter (fun (_, a) -> Option.iter (expr it) a) args
            end
            else if S.is_spawn key then
              (* the spawned body runs with an empty held set *)
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some (arg : expression) when S.is_function arg ->
                      with_held_none ctx (fun () -> expr it arg)
                  | Some arg -> expr it arg
                  | None -> ())
                args
            else if S.is_parallel_entry key then begin
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some (arg : expression) when S.is_function arg ->
                      r8_check ctx key arg;
                      with_held_none ctx (fun () -> expr it arg)
                  | Some arg -> expr it arg
                  | None -> ())
                args
            end
            else begin
              if String.starts_with ~prefix:"Unix." key && ctx.held <> []
              then
                report ctx e.exp_loc "R7"
                  (Printf.sprintf
                     "blocking call %s made while holding lock class '%s'; \
                      move the syscall outside the critical section"
                     key
                     (fst (List.hd ctx.held)));
              check_call ctx qkey e.exp_loc;
              let callee_classes =
                match S.resolve ctx.genv qkey with
                | Some g -> g.S.calls_under
                | None -> []
              in
              expr it h;
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some (arg : expression) when S.is_function arg ->
                      if callee_classes <> [] then
                        with_held_classes ctx callee_classes e.exp_loc
                          (fun () -> expr it arg)
                      else expr it arg
                  | Some arg -> expr it arg
                  | None -> ())
                args
            end)
    | _ -> super.expr it e
  in
  let value_binding it (vb : value_binding) =
    with_allows ctx (T.allow_tokens vb.vb_attributes) (fun () ->
        super.value_binding it vb)
  in
  { super with expr; value_binding }

let check genv ~src ~modname ~file_allows (str : structure) =
  let ctx =
    {
      src;
      genv;
      unit_name = T.norm_name modname;
      aliases = S.aliases_of str;
      active_allows = file_allows;
      findings = [];
      held = [];
      consumed = Hashtbl.create 8;
    }
  in
  let it = iterator ctx in
  it.structure it str;
  List.sort_uniq T.compare_findings ctx.findings
