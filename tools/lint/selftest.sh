#!/bin/sh
# Seed-and-restore self-test for ppdc-lint's concurrency rules.
#
# A lint gate that silently stops firing is worse than no gate, so CI
# re-proves the two hardest rules end to end on every run: append a
# lock-order inversion reached through a function call (R6 needs the
# interprocedural summary to see it) and a manual lock span that leaks
# the mutex on the raise path (R7) to the engine, assert each produces
# exactly one finding at the expected file:line:col, then restore the
# file and assert the tree is clean again.
#
# Run from anywhere; operates on the repo containing this script.
set -eu
cd "$(dirname "$0")/../.."

TARGET=lib/server/engine.ml
SEED=tools/lint/ci_seed.snippet
BACKUP=$(mktemp /tmp/ppdc-selftest.XXXXXX)

BASE=$(wc -l < "$TARGET")
# Offsets into ci_seed.snippet (1-based, counting its leading blank
# line): the R6 inversion is the seed_touch_cache call on line 7
# (col 45) — cache re-acquired through a callee while the stats leaf
# is held — the R7 leak is the bare Mutex.lock on line 10 (col 2).
R6_LOC="$TARGET:$((BASE + 7)):45 [R6-lock-order]"
R7_LOC="$TARGET:$((BASE + 10)):2 [R7-unsafe-locking]"

cp "$TARGET" "$BACKUP"
trap 'cp "$BACKUP" "$TARGET"; rm -f "$BACKUP"' EXIT

cat "$SEED" >> "$TARGET"
dune build 2>&1 || { echo "selftest: seeded tree failed to build" >&2; exit 1; }

set +e
OUT=$(dune exec ppdc-lint -- -q lib bin bench 2>&1)
STATUS=$?
set -e

fail() {
  echo "selftest: $1" >&2
  echo "--- lint output ---" >&2
  echo "$OUT" >&2
  exit 1
}

[ "$STATUS" -eq 1 ] || fail "expected exit 1 on the seeded tree, got $STATUS"
echo "$OUT" | grep -F "$R6_LOC" > /dev/null || fail "missing R6 at $R6_LOC"
echo "$OUT" | grep -F "$R7_LOC" > /dev/null || fail "missing R7 at $R7_LOC"
[ "$(echo "$OUT" | grep -c 'R6-lock-order')" -eq 1 ] \
  || fail "expected exactly one R6 finding"
[ "$(echo "$OUT" | grep -c 'R7-unsafe-locking')" -eq 1 ] \
  || fail "expected exactly one R7 finding"

cp "$BACKUP" "$TARGET"
rm -f "$BACKUP"
trap - EXIT
dune build 2>&1
dune exec ppdc-lint -- -q lib bin bench \
  || { echo "selftest: restored tree is not clean" >&2; exit 1; }

echo "selftest: R6/R7 fire at the seeded locations and the restored tree is clean"
