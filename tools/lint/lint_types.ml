(* Shared vocabulary of ppdc-lint: the finding record, the rule table,
   attribute plumbing and path normalization. Everything here is used
   by at least two of [Lint_core] (R1-R5), [Lint_summary] /
   [Lint_concurrency] (R6-R8) and [Lint_sarif]. [Lint_core] re-exports
   this module wholesale so external callers keep the historical
   [Lint_core.finding] / [Lint_core.to_string] API. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;  (* "R1" .. "R8" *)
  slug : string;  (* "poly-compare" .. *)
  msg : string;
}

let rule_slugs =
  [
    ("R1", "poly-compare");
    ("R2", "float-equality");
    ("R3", "quadratic-list");
    ("R4", "domain-unsafe-global");
    ("R5", "sentinel-escape");
    ("R6", "lock-order");
    ("R7", "unsafe-locking");
    ("R8", "parallel-purity");
  ]

let to_string f =
  Printf.sprintf "%s:%d:%d [%s-%s] %s" f.file f.line f.col f.rule f.slug f.msg

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let mem_s x l = List.exists (String.equal x) l

(* --- attribute helpers ------------------------------------------------- *)

(* Payload of [@ppdc.allow "R1 R3"] / [@@@ppdc.lock_order "a b c"]:
   every string constant in the payload, split on spaces and commas.
   List literals ([@@@ppdc.lock_order ["a"; "b"]]) are traversed via
   their [::] applications. *)
let attr_tokens (attr : Parsetree.attribute) =
  let consts =
    match attr.attr_payload with
    | PStr items ->
        List.concat_map
          (fun (it : Parsetree.structure_item) ->
            match it.pstr_desc with
            | Pstr_eval (e, _) ->
                let rec consts (e : Parsetree.expression) =
                  match e.pexp_desc with
                  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
                  | Pexp_tuple es -> List.concat_map consts es
                  | Pexp_construct (_, Some arg) -> consts arg
                  | Pexp_apply (f, args) ->
                      consts f
                      @ List.concat_map (fun (_, a) -> consts a) args
                  | _ -> []
                in
                consts e
            | _ -> [])
          items
    | _ -> []
  in
  consts
  |> List.concat_map (String.split_on_char ' ')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun s -> s <> "")

let attrs_named name (attrs : Parsetree.attributes) =
  List.filter
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let has_attr name attrs = attrs_named name attrs <> []

let allow_tokens attrs =
  List.concat_map attr_tokens (attrs_named "ppdc.allow" attrs)

(* A token suppresses a rule if it is the id ("R1", any case), the slug
   ("poly-compare"), or the printed form ("R1-poly-compare"). *)
let token_matches token (id, slug) =
  let t = String.lowercase_ascii token in
  let id = String.lowercase_ascii id in
  String.equal t id || String.equal t slug || String.equal t (id ^ "-" ^ slug)

(* --- path normalization ------------------------------------------------- *)

let strip_prefix ~prefix s =
  if String.starts_with ~prefix s then
    String.sub s (String.length prefix) (String.length s - String.length prefix)
  else s

(* Undo dune's module-name mangling: "Ppdc_prelude__Obs" -> "Obs" etc.
   Each dot-segment is split on "__" and only the last non-empty piece
   kept ("Ppdc_lint_fixtures__" alone collapses to nothing and is
   dropped). *)
let demangle_segment seg =
  let pieces =
    (* String.split_on_char has no two-char splitter; scan by hand. *)
    let out = ref [] and start = ref 0 in
    let n = String.length seg in
    for i = 0 to n - 2 do
      if seg.[i] = '_' && seg.[i + 1] = '_' then begin
        out := String.sub seg !start (i - !start) :: !out;
        start := i + 2
      end
    done;
    List.rev (String.sub seg !start (n - !start) :: !out)
  in
  match List.filter (fun p -> p <> "" && p <> "_") pieces with
  | [] -> None
  | ps -> Some (List.nth ps (List.length ps - 1))

(* "Stdlib.List.nth" / "Stdlib__List.nth" / "Ppdc_prelude__Obs.incr"
   -> "List.nth" / "Obs.incr". *)
let norm_name s =
  s
  |> strip_prefix ~prefix:"Stdlib!."
  |> strip_prefix ~prefix:"Stdlib."
  |> strip_prefix ~prefix:"Stdlib__"
  |> String.split_on_char '.'
  |> List.filter_map demangle_segment
  |> String.concat "."

let norm_path p = norm_name (Path.name p)
