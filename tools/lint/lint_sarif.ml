(* Minimal SARIF 2.1.0 emitter for ppdc-lint findings. Self-contained
   (own JSON escaping) so the lint toolchain keeps zero dependencies on
   the analyzed libraries. One run, one rule descriptor per R-id, one
   result per finding. *)

let json_escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let str s =
  let buf = Buffer.create (String.length s + 2) in
  json_escape_into buf s;
  Buffer.contents buf

let rule_descriptions =
  [
    ("R1", "Polymorphic compare/min/max/mem instantiated at float");
    ("R2", "=/<> at type float (NaN-unsound)");
    ("R3", "List.nth inside library code (quadratic in loops)");
    ("R4", "Top-level mutable state in libraries run under Parallel");
    ("R5", "Exported function can return an undocumented sentinel");
    ("R6", "Lock acquisition inverting the declared lock order");
    ("R7", "Mutex.lock without a provably-reached unlock on the exception path");
    ("R8", "Impure closure passed to a Parallel entry point");
  ]

let rule_json (id, slug) =
  let desc =
    match List.assoc_opt id rule_descriptions with
    | Some d -> d
    | None -> slug
  in
  Printf.sprintf
    {|{"id":%s,"name":%s,"shortDescription":{"text":%s},"defaultConfiguration":{"level":"error"}}|}
    (str id) (str slug) (str desc)

let result_json (f : Lint_types.finding) =
  Printf.sprintf
    {|{"ruleId":%s,"level":"error","message":{"text":%s},"locations":[{"physicalLocation":{"artifactLocation":{"uri":%s},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (str f.rule)
    (str (Printf.sprintf "[%s-%s] %s" f.rule f.slug f.msg))
    (str f.file) f.line
    (* SARIF columns are 1-based; the text output keeps the compiler's
       0-based convention. *)
    (f.col + 1)

let to_string findings =
  let rules = List.map rule_json Lint_types.rule_slugs in
  let results = List.map result_json findings in
  String.concat ""
    [
      {|{"$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"ppdc-lint","informationUri":"https://example.invalid/ppdc-lint","version":"1.0.0","rules":[|};
      String.concat "," rules;
      {|]}},"results":[|};
      String.concat "," results;
      {|]}]}|};
    ]
