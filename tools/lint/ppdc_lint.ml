(* ppdc-lint CLI: map source dirs to their _build/default cmt trees,
   run the rules, print findings as file:line:col [rule] message, exit
   non-zero when anything fires. Run after `dune build` (the typed
   trees are a build by-product).

   Baselines let a new rule land warning-only: `--write-baseline F`
   records the current findings as (rule, file, count) triples;
   `--baseline F` then fails only when some (rule, file) count exceeds
   the recorded one, so existing debt doesn't block CI while new debt
   does. Counts rather than line numbers keep the baseline stable
   under unrelated edits (line drift), at the cost of letting a file
   swap one old finding for one new finding of the same rule. *)

module Lint_core = Ppdc_lint_core.Lint_core
module Lint_sarif = Ppdc_lint_core.Lint_sarif

let usage =
  "ppdc-lint [OPTIONS] [DIR...]\n\
   Type-aware lint over dune's .cmt trees. DIRs default to `lib bin \
   bench`;\n\
   each is resolved against _build/default first, then taken verbatim \
   (so a\n\
   path that already contains .cmt files works too).\n\n\
   Rules:\n\
  \  R1-poly-compare        polymorphic compare/min/max/mem at float\n\
  \  R2-float-equality      =/<> at type float (NaN-unsound)\n\
  \  R3-quadratic-list      List.nth inside lib/\n\
  \  R4-domain-unsafe-global top-level mutable state in libraries\n\
  \  R5-sentinel-escape     exported fn returns nan/infinity/[-1] \
   sentinel\n\
  \  R6-lock-order          acquisition inverting [@@@ppdc.lock_order]\n\
  \  R7-unsafe-locking      Mutex.lock with no unlock on the raise path\n\
  \  R8-parallel-purity     impure closure given to Parallel.*\n\n\
   Suppression: [@ppdc.allow \"R1\"] on the expression/binding,\n\
  \  [@@ppdc.domain_safe \"reason\"] (R4, and R8 exemption on \
   functions),\n\
  \  [@@ppdc.sentinel \"reason\"] in the mli (R5). R6-R8 read\n\
  \  [@@@ppdc.lock_order], [@ppdc.guards] and [@@ppdc.calls_under] — \
   see EXTENDING.md.\n\n\
   Options:\n\
  \  --lib-prefix P        treat sources under P as library code for \
   R3/R4\n\
  \                        (repeatable; default `lib/`; `''` means all)\n\
  \  --format text|sarif   findings format on stdout (default text)\n\
  \  --sarif-out FILE      additionally write SARIF 2.1.0 to FILE\n\
  \  --baseline FILE       fail only on findings not in the baseline\n\
  \  --write-baseline FILE record current findings and exit 0\n\
  \  -q                    print only the findings, no summary\n"

(* --- baseline ----------------------------------------------------------- *)

(* One line per (rule, file) with a finding count, tab-separated and
   sorted, so diffs of the baseline file itself are readable. *)
let baseline_counts findings =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (f : Lint_core.finding) ->
      let key = (f.rule, f.file) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    findings;
  Hashtbl.fold (fun (rule, file) n acc -> (rule, file, n) :: acc) tbl []
  |> List.sort compare

let write_baseline path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun (rule, file, n) -> Printf.fprintf oc "%s\t%d\t%s\n" rule n file)
        (baseline_counts findings))

let read_baseline path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tbl = Hashtbl.create 32 in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char '\t' line with
           | [ rule; n; file ] -> (
               match int_of_string_opt n with
               | Some n -> Hashtbl.replace tbl (rule, file) n
               | None -> ())
           | _ -> ()
         done
       with End_of_file -> ());
      tbl)

(* Findings in excess of the baseline count for their (rule, file). *)
let new_findings baseline findings =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (f : Lint_core.finding) ->
      let key = (f.rule, f.file) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen key) in
      Hashtbl.replace seen key n;
      n > Option.value ~default:0 (Hashtbl.find_opt baseline key))
    findings

(* --- entry point --------------------------------------------------------- *)

let () =
  let dirs = ref [] in
  let lib_prefixes = ref [] in
  let quiet = ref false in
  let format = ref `Text in
  let sarif_out = ref None in
  let baseline = ref None in
  let write_baseline_to = ref None in
  let missing_arg opt =
    Printf.eprintf "ppdc-lint: %s expects an argument\n" opt;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-help" :: _ ->
        print_string usage;
        exit 0
    | "-q" :: rest ->
        quiet := true;
        parse rest
    | "--lib-prefix" :: p :: rest ->
        lib_prefixes := p :: !lib_prefixes;
        parse rest
    | "--format" :: "text" :: rest ->
        format := `Text;
        parse rest
    | "--format" :: "sarif" :: rest ->
        format := `Sarif;
        parse rest
    | "--format" :: other :: _ ->
        Printf.eprintf "ppdc-lint: unknown format %S (text or sarif)\n" other;
        exit 2
    | "--sarif-out" :: p :: rest ->
        sarif_out := Some p;
        parse rest
    | "--baseline" :: p :: rest ->
        baseline := Some p;
        parse rest
    | "--write-baseline" :: p :: rest ->
        write_baseline_to := Some p;
        parse rest
    | [ ("--lib-prefix" | "--format" | "--sarif-out" | "--baseline"
        | "--write-baseline") as opt ] ->
        missing_arg opt
    | d :: rest ->
        dirs := d :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | ds -> ds
  in
  let resolve d =
    let in_build = Filename.concat "_build/default" d in
    if Sys.file_exists in_build then in_build else d
  in
  let missing = List.filter (fun d -> not (Sys.file_exists (resolve d))) dirs in
  if missing <> [] then begin
    Printf.eprintf
      "ppdc-lint: no such directory: %s (run `dune build` first?)\n"
      (String.concat ", " missing);
    exit 2
  end;
  (match !baseline with
  | Some p when not (Sys.file_exists p) ->
      Printf.eprintf "ppdc-lint: no such baseline file: %s\n" p;
      exit 2
  | _ -> ());
  let lib_prefixes =
    match List.rev !lib_prefixes with [] -> None | ps -> Some ps
  in
  let findings = Lint_core.scan ?lib_prefixes (List.map resolve dirs) in
  (match !write_baseline_to with
  | Some path ->
      write_baseline path findings;
      if not !quiet then
        Printf.eprintf "ppdc-lint: baseline (%d finding(s)) written to %s\n"
          (List.length findings) path;
      exit 0
  | None -> ());
  (match !sarif_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Lint_sarif.to_string findings))
  | None -> ());
  (* The gate: everything, or only what the baseline doesn't cover. *)
  let gating =
    match !baseline with
    | None -> findings
    | Some path -> new_findings (read_baseline path) findings
  in
  (match !format with
  | `Text -> List.iter (fun f -> print_endline (Lint_core.to_string f)) gating
  | `Sarif -> print_string (Lint_sarif.to_string gating));
  match gating with
  | [] ->
      if not !quiet then
        Printf.eprintf "ppdc-lint: clean (%s)%s\n" (String.concat " " dirs)
          (match !baseline with
          | Some _ when findings <> [] ->
              Printf.sprintf " — %d baselined finding(s) suppressed"
                (List.length findings)
          | _ -> "");
      exit 0
  | fs ->
      if not !quiet then
        Printf.eprintf "ppdc-lint: %d finding(s)\n" (List.length fs);
      exit 1
