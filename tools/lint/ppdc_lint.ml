(* ppdc-lint CLI: map source dirs to their _build/default cmt trees,
   run the rules, print findings as file:line:col [rule] message, exit
   non-zero when anything fires. Run after `dune build` (the typed
   trees are a build by-product). *)

module Lint_core = Ppdc_lint_core.Lint_core

let usage =
  "ppdc-lint [OPTIONS] [DIR...]\n\
   Type-aware lint over dune's .cmt trees. DIRs default to `lib bin \
   bench`;\n\
   each is resolved against _build/default first, then taken verbatim \
   (so a\n\
   path that already contains .cmt files works too).\n\n\
   Rules:\n\
  \  R1-poly-compare        polymorphic compare/min/max/mem at float\n\
  \  R2-float-equality      =/<> at type float (NaN-unsound)\n\
  \  R3-quadratic-list      List.nth inside lib/\n\
  \  R4-domain-unsafe-global top-level mutable state in libraries\n\
  \  R5-sentinel-escape     exported fn returns nan/infinity/[-1] \
   sentinel\n\n\
   Suppression: [@ppdc.allow \"R1\"] on the expression/binding,\n\
  \  [@@ppdc.domain_safe \"reason\"] (R4), [@@ppdc.sentinel \"reason\"] \
   in the mli (R5).\n\n\
   Options:\n\
  \  --lib-prefix P   treat sources under P as library code for R3/R4\n\
  \                   (repeatable; default `lib/`; `''` means all)\n\
  \  -q               print only the findings, no summary\n"

let () =
  let dirs = ref [] in
  let lib_prefixes = ref [] in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-help" :: _ ->
        print_string usage;
        exit 0
    | "-q" :: rest ->
        quiet := true;
        parse rest
    | "--lib-prefix" :: p :: rest ->
        lib_prefixes := p :: !lib_prefixes;
        parse rest
    | "--lib-prefix" :: [] ->
        prerr_endline "ppdc-lint: --lib-prefix expects an argument";
        exit 2
    | d :: rest ->
        dirs := d :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | ds -> ds
  in
  let resolve d =
    let in_build = Filename.concat "_build/default" d in
    if Sys.file_exists in_build then in_build else d
  in
  let missing = List.filter (fun d -> not (Sys.file_exists (resolve d))) dirs in
  if missing <> [] then begin
    Printf.eprintf
      "ppdc-lint: no such directory: %s (run `dune build` first?)\n"
      (String.concat ", " missing);
    exit 2
  end;
  let lib_prefixes =
    match List.rev !lib_prefixes with [] -> None | ps -> Some ps
  in
  let findings = Lint_core.scan ?lib_prefixes (List.map resolve dirs) in
  List.iter (fun f -> print_endline (Lint_core.to_string f)) findings;
  match findings with
  | [] ->
      if not !quiet then
        Printf.eprintf "ppdc-lint: clean (%s)\n" (String.concat " " dirs);
      exit 0
  | fs ->
      if not !quiet then
        Printf.eprintf "ppdc-lint: %d finding(s)\n" (List.length fs);
      exit 1
