(* ppdc-lint: project-specific static analysis over dune's [.cmt] typed
   trees (read with [Cmt_format.read_cmt], walked with [Tast_iterator]).
   Rules are type-aware — R1 fires on [compare] *instantiated at float*,
   not on the token "compare" — because every rule here encodes a bug
   this repo actually shipped and later fixed by hand:

   R1 poly-compare        — [Stats.percentile] sorted floats with the
                            polymorphic [compare]; NaN silently reorders.
   R2 float-equality      — [=]/[<>] at type float is NaN-unsound.
   R3 quadratic-list      — [List.nth] in lib/ (the [Stroll_dp] level
                            store was accidentally quadratic).
   R4 domain-unsafe-global— top-level mutable state in libraries linked
                            into parallel sections (the [Runner] cache).
   R5 sentinel-escape     — exported functions that can return
                            nan/infinity/negative-index sentinels without
                            the mli documenting it (the [solve_n2] bug).

   R6 lock-order          — acquiring a lock class the declared
                            [@@@ppdc.lock_order] places outside one
                            already held, including through any chain of
                            calls ([Lint_summary] closes the call graph).
   R7 unsafe-locking      — [Mutex.lock] with no unlock on the exception
                            path, and Unix syscalls made under a lock.
   R8 parallel-purity     — closures given to [Parallel.*] that take
                            locks or write captured state unkeyed by the
                            loop variable.

   Suppression: [@ppdc.allow "R1"] on an expression or binding,
   [@@@ppdc.allow "R4"] for a whole file, [@@ppdc.domain_safe "reason"]
   to document the concurrency discipline of a global (R4) or to exempt
   a function's acquisitions from R8, and [@@ppdc.sentinel "reason"] on
   the mli val to document a sentinel contract (R5). R6-R8 declare
   their model with [@@@ppdc.lock_order], [@ppdc.guards] and
   [@@ppdc.calls_under] — see EXTENDING.md. *)

open Typedtree

(* The finding record, rule table and attribute plumbing live in
   [Lint_types]; re-exported here so callers keep the historical
   [Lint_core.finding] / [Lint_core.to_string] API. *)
include Lint_types

(* --- per-file context --------------------------------------------------- *)

type ctx = {
  src : string;
  is_lib : bool;  (* R3/R4 apply only inside library code *)
  mutable active_allows : string list;
  mutable findings : finding list;
  exported : (string, bool) Hashtbl.t option;
      (* from the sibling .cmti: name -> documented with [@@ppdc.sentinel] *)
}

let suppressed ctx id =
  let slug = List.assoc id rule_slugs in
  List.exists (fun tok -> token_matches tok (id, slug)) ctx.active_allows

let report ctx (loc : Location.t) id msg =
  if (not (suppressed ctx id)) && not loc.loc_ghost then begin
    let p = loc.loc_start in
    let f =
      {
        file = ctx.src;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule = id;
        slug = List.assoc id rule_slugs;
        msg;
      }
    in
    ctx.findings <- f :: ctx.findings
  end

let with_allows ctx tokens f =
  if tokens = [] then f ()
  else begin
    let saved = ctx.active_allows in
    ctx.active_allows <- tokens @ saved;
    Fun.protect ~finally:(fun () -> ctx.active_allows <- saved) f
  end

(* --- type predicates ---------------------------------------------------- *)

(* Structural check only: we do not re-create a typing [Env.t], so an
   abbreviation like [type rate = float] is seen as its own constructor
   and we descend into its (empty) argument list. In practice dune
   projects alias little and the instantiated types in .cmt files are
   already expanded at most use sites. *)
let rec type_contains_float ty =
  match Types.get_desc ty with
  | Tconstr (p, args, _) ->
      Path.same p Predef.path_float || List.exists type_contains_float args
  | Ttuple ts -> List.exists type_contains_float ts
  | Tpoly (t, _) -> type_contains_float t
  | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

let first_arg ty =
  match Types.get_desc ty with Tarrow (_, a, _, _) -> Some a | _ -> None

(* --- R1/R2/R3: occurrence-based rules ----------------------------------- *)

(* Identifiers whose semantics depend on the polymorphic structural
   order/equality. Checking the *occurrence* (its instantiated type)
   rather than the application means [List.sort compare] and
   [Array.sort compare] are caught through the same code path. *)
let poly_order = [ "compare"; "min"; "max" ]
let poly_eq = [ "="; "<>" ]

let structural_containers =
  [
    "List.mem";
    "List.assoc";
    "List.assoc_opt";
    "List.mem_assoc";
    "List.remove_assoc";
    "ListLabels.mem";
    "ListLabels.assoc";
    "Array.mem";
    "ArrayLabels.mem";
  ]

let check_expr ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      let n = norm_path p in
      if String.equal n "List.nth" && ctx.is_lib then
        report ctx e.exp_loc "R3"
          "List.nth is O(n) per access (quadratic in loops); use an array, \
           a growable buffer, or iterate the list structurally";
      match first_arg e.exp_type with
      | None -> ()
      | Some a ->
          if mem_s n poly_eq then begin
            if is_float a then
              report ctx e.exp_loc "R2"
                (Printf.sprintf
                   "( %s ) at type float is NaN-unsound; use Float.equal / \
                    Float.compare or an explicit epsilon test"
                   n)
            else if type_contains_float a then
              report ctx e.exp_loc "R1"
                (Printf.sprintf
                   "polymorphic ( %s ) instantiated at a type containing \
                    float; compare components with Float.equal explicitly"
                   n)
          end
          else if mem_s n poly_order && type_contains_float a then
            report ctx e.exp_loc "R1"
              (Printf.sprintf
                 "polymorphic %s instantiated at a type containing float \
                  (NaN breaks the structural order); use Float.compare / \
                  Float.min / Float.max or a keyed comparator"
                 n)
          else if mem_s n structural_containers && type_contains_float a then
            report ctx e.exp_loc "R1"
              (Printf.sprintf
                 "%s uses structural equality on a type containing float \
                  (NaN never matches itself); use an explicit predicate \
                  (List.exists / List.find_opt with Float.equal)"
                 n))
  | _ -> ()

(* --- R4: top-level mutable state in libraries --------------------------- *)

let mutable_containers =
  [ "Hashtbl.t"; "ref"; "Queue.t"; "Stack.t"; "Buffer.t"; "Weak.t" ]

(* Sanctioned concurrency primitives: holding state in these *is* the
   documented discipline, so they do not trip R4 by themselves. *)
let safe_containers =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
    "Lazy.t";
  ]

let rec type_mutable ty =
  match Types.get_desc ty with
  | Tconstr (p, args, _) ->
      let n = norm_path p in
      if mem_s n safe_containers then false
      else if
        mem_s n mutable_containers
        || Path.same p Predef.path_array
        || Path.same p Predef.path_bytes
      then true
      else List.exists type_mutable args
  | Ttuple ts -> List.exists type_mutable ts
  | _ -> false

let binding_name (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (_, l) -> Some l.txt
  (* [let x : t = e] typechecks as an alias pattern under a constraint. *)
  | Tpat_alias (_, _, l) -> Some l.txt
  | _ -> None

let check_global ctx (vb : value_binding) =
  if ctx.is_lib then
    match Types.get_desc vb.vb_expr.exp_type with
    | Tarrow _ -> ()
    | _ ->
        if
          type_mutable vb.vb_expr.exp_type
          && not (has_attr "ppdc.domain_safe" vb.vb_attributes)
        then
          with_allows ctx (allow_tokens vb.vb_attributes) (fun () ->
              let name = Option.value (binding_name vb) ~default:"_" in
              report ctx vb.vb_loc "R4"
                (Printf.sprintf
                   "top-level mutable state `%s` is shared across domains \
                    once this library runs under Parallel; guard it \
                    (Mutex/Atomic/DLS) and annotate the binding with \
                    [@@ppdc.domain_safe \"reason\"]"
                   name))

(* --- R5: sentinel values escaping an exported function ------------------ *)

let sentinel_idents =
  [
    "nan";
    "infinity";
    "neg_infinity";
    "Float.nan";
    "Float.infinity";
    "Float.neg_infinity";
  ]

(* Expressions in tail (return) position of a function body, looking
   through the control-flow constructs that merely select a result. *)
let rec tail_exprs (e : expression) acc =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) acc cases
  | Texp_let (_, _, b) | Texp_sequence (_, b) | Texp_open (_, b) ->
      tail_exprs b acc
  | Texp_ifthenelse (_, t, Some f) -> tail_exprs t (tail_exprs f acc)
  | Texp_ifthenelse (_, t, None) -> tail_exprs t acc
  | Texp_match (_, cases, _) ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) acc cases
  | Texp_try (b, cases) ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) (tail_exprs b acc)
        cases
  | Texp_letop { body; _ } -> tail_exprs body.c_rhs acc
  | _ -> e :: acc

(* A returned value is "sentinel-y" if its construction skeleton
   (records/tuples/constructors/arrays — not arbitrary sub-calls)
   mentions nan/infinity or builds an array literal of negative indices
   such as [|-1; -1|]. *)
let rec sentinel_value (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> mem_s (norm_path p) sentinel_idents
  | Texp_constant (Const_float s) -> (
      match float_of_string_opt s with
      | Some f -> Float.is_nan f || not (Float.is_finite f)
      | None -> false)
  | Texp_array els ->
      List.exists
        (fun (el : expression) ->
          sentinel_value el
          ||
          match el.exp_desc with
          | Texp_constant (Const_int n) -> n < 0
          | _ -> false)
        els
  | Texp_tuple es -> List.exists sentinel_value es
  | Texp_construct (_, _, es) -> List.exists sentinel_value es
  | Texp_record { fields; _ } ->
      Array.exists
        (fun (_, def) ->
          match def with
          | Overridden (_, e) -> sentinel_value e
          | Kept _ -> false)
        fields
  | Texp_apply (f, args) -> (
      (* unary negation of a sentinel, e.g. [-. infinity] *)
      match f.exp_desc with
      | Texp_ident (p, _, _) when mem_s (norm_path p) [ "~-."; "~-" ] ->
          List.exists
            (fun (_, a) ->
              match a with Some a -> sentinel_value a | None -> false)
            args
      | _ -> false)
  | _ -> false

let is_function (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let check_r5 ctx (str : structure) =
  match ctx.exported with
  | None -> ()  (* no mli: nothing is an exported contract yet *)
  | Some exported ->
      List.iter
        (fun (it : structure_item) ->
          match it.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match binding_name vb with
                  | Some name
                    when Hashtbl.mem exported name
                         && (not (Hashtbl.find exported name))
                         && is_function vb.vb_expr ->
                      with_allows ctx (allow_tokens vb.vb_attributes)
                        (fun () ->
                          let tails = tail_exprs vb.vb_expr [] in
                          List.iter
                            (fun (t : expression) ->
                              if sentinel_value t then
                                with_allows ctx (allow_tokens t.exp_attributes)
                                  (fun () ->
                                    report ctx t.exp_loc "R5"
                                      (Printf.sprintf
                                         "exported `%s` can return a \
                                          sentinel (nan/infinity/negative \
                                          index) that callers must know \
                                          about; document the contract in \
                                          the mli with [@@ppdc.sentinel \
                                          \"reason\"] or raise instead"
                                         name)))
                            tails;
                          (* An empty-literal return mixed with non-empty
                             returns is the ambiguous-sentinel shape the
                             old [path_from_pred] shipped: [] meant
                             "unreachable" but was indistinguishable from
                             a legitimately empty result. *)
                          let empty_literal (t : expression) =
                            match t.exp_desc with
                            | Texp_construct (_, cd, []) ->
                                String.equal cd.cstr_name "[]"
                            | Texp_array [] -> true
                            | _ -> false
                          in
                          if
                            List.exists
                              (fun t -> not (empty_literal t))
                              tails
                          then
                            List.iter
                              (fun (t : expression) ->
                                if empty_literal t then
                                  with_allows ctx
                                    (allow_tokens t.exp_attributes)
                                    (fun () ->
                                      report ctx t.exp_loc "R5"
                                        (Printf.sprintf
                                           "exported `%s` returns the empty \
                                            literal on one path and a \
                                            non-empty result on another; \
                                            [] / [||] is an ambiguous \
                                            sentinel callers cannot tell \
                                            from a legitimately empty \
                                            result — return an \
                                            option/variant or document the \
                                            contract in the mli with \
                                            [@@ppdc.sentinel \"reason\"]"
                                           name)))
                              tails)
                  | _ -> ())
                vbs
          | _ -> ())
        str.str_items

(* --- the iterator ------------------------------------------------------- *)

let iterator ctx =
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    with_allows ctx (allow_tokens e.exp_attributes) (fun () ->
        check_expr ctx e;
        super.expr it e)
  in
  let value_binding it (vb : value_binding) =
    with_allows ctx (allow_tokens vb.vb_attributes) (fun () ->
        super.value_binding it vb)
  in
  let structure_item it (si : structure_item) =
    (* R4 looks at structure items so it sees module top levels (incl.
       nested modules) but not lets inside function bodies. *)
    (match si.str_desc with
    | Tstr_value (_, vbs) -> List.iter (check_global ctx) vbs
    | _ -> ());
    super.structure_item it si
  in
  { super with expr; value_binding; structure_item }

(* --- cmt/cmti plumbing -------------------------------------------------- *)

let exported_of_cmti cmti_path =
  match (Cmt_format.read_cmt cmti_path).cmt_annots with
  | Interface sg ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (si : signature_item) ->
          match si.sig_desc with
          | Tsig_value vd ->
              Hashtbl.replace tbl vd.val_name.txt
                (has_attr "ppdc.sentinel" vd.val_attributes)
          | _ -> ())
        sg.sig_items;
      Some tbl
  | _ | (exception _) -> None

(* File-wide suppressions: floating [@@@ppdc.allow "R4"] attributes. *)
let file_allows (str : structure) =
  List.concat_map
    (fun (it : structure_item) ->
      match it.str_desc with
      | Tstr_attribute a when String.equal a.attr_name.txt "ppdc.allow" ->
          attr_tokens a
      | _ -> [])
    str.str_items

let analyze_cmt ?(lib_prefixes = [ "lib/" ]) ?genv cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> []
  | info -> (
      match (info.cmt_annots, info.cmt_sourcefile) with
      | Implementation str, Some src when Filename.check_suffix src ".ml" ->
          let is_lib =
            List.exists
              (fun p -> String.equal p "" || String.starts_with ~prefix:p src)
              lib_prefixes
          in
          let exported =
            let cmti = Filename.remove_extension cmt_path ^ ".cmti" in
            if Sys.file_exists cmti then exported_of_cmti cmti else None
          in
          let ctx =
            {
              src;
              is_lib;
              active_allows = file_allows str;
              findings = [];
              exported;
            }
          in
          check_r5 ctx str;
          let it = iterator ctx in
          it.structure it str;
          (* R6-R8 replay the file against the cross-file summaries; a
             bare [analyze_cmt] (no genv) runs the per-file rules only. *)
          let concurrency =
            match genv with
            | None -> []
            | Some genv ->
                Lint_concurrency.check genv ~src ~modname:info.cmt_modname
                  ~file_allows:(file_allows str) str
          in
          List.sort_uniq compare_findings (concurrency @ ctx.findings)
      | _ -> [])

let rec collect_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then collect_cmts path acc
          else if Filename.check_suffix path ".cmt" then path :: acc
          else acc)
        acc entries

(* Two phases over the same cmt set: collect + close the concurrency
   summaries (so R6/R8 see through cross-module calls anywhere in the
   scan), then check every file. *)
let scan ?lib_prefixes roots =
  let cmts =
    List.concat_map
      (fun root -> List.sort String.compare (collect_cmts root []))
      roots
  in
  let genv = Lint_summary.build cmts in
  List.concat_map (analyze_cmt ?lib_prefixes ~genv) cmts
  |> List.sort_uniq compare_findings
